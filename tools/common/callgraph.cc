/**
 * @file
 * Call-graph construction. See callgraph.h for the contract.
 *
 * The function-body detector merges the two proven heuristics from the
 * analyzer family: nxtaint's backward walk that resolves constructor
 * initializer lists to the real parameter list, and nxstate's
 * class-context stack for in-class methods plus `X::f` out-of-line
 * qualification. Everything downstream (name, arity, return type,
 * call sites) hangs off the parameter-list parens those find.
 */

#include "common/callgraph.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/tokens.h"

namespace nxcommon {

namespace {

using nxlex::Lexer;
using nxlex::Tok;
using nxlex::Token;

const std::set<std::string, std::less<>> kControlHeads = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "new", "delete", "decltype", "static_assert"};

/** Identifiers that may directly precede a genuine call (`return
 * f(x)`) — any other identifier before `name(` makes it a declaration
 * (`Type name(args)`), not a call. */
const std::set<std::string, std::less<>> kCallPrecursors = {
    "return", "co_return", "co_await", "co_yield", "throw", "else",
    "do",     "default",   "case"};

const std::set<std::string, std::less<>> kNotReturnType = {
    "const",    "static", "inline",   "virtual", "explicit",
    "constexpr", "friend", "typename", "mutable", "extern"};

/**
 * Does the `{` at @p braceIdx open a function body? On success @p po /
 * @p pc are the parameter-list parens. Ported from nxtaint (the
 * variant that walks constructor initializer lists back to the real
 * parameter list).
 */
bool
startsFunctionBody(const std::vector<Token> &t, size_t braceIdx,
                   size_t &po, size_t &pc)
{
    if (braceIdx == 0)
        return false;
    size_t i = braceIdx - 1;
    // Skip trailing const/noexcept/override/final and `-> Type`.
    for (int guard = 0; guard < 64; ++guard) {
        const Token &tk = t[i];
        if (tk.kind == Tok::Ident || isPunct(t, i, "::") ||
            isPunct(t, i, "<") || isPunct(t, i, ">") ||
            isPunct(t, i, "*") || isPunct(t, i, "&") ||
            isPunct(t, i, "->")) {
            if (i == 0)
                return false;
            --i;
            continue;
        }
        break;
    }
    // Constructor initializer lists: `) : a_(x), b_(y) {`. Walk
    // backwards over `name(...)` / `name{...}` entries joined by `,`
    // until the `:` after the parameter list.
    for (int guard = 0; guard < 256; ++guard) {
        if (isPunct(t, i, ")") || isPunct(t, i, "}")) {
            char open = t[i].text[0] == ')' ? '(' : '{';
            size_t openIdx = matchBackward(t, i, open, t[i].text[0]);
            if (openIdx == t.size() || openIdx == 0)
                return false;
            size_t before = openIdx - 1;
            if (t[before].kind == Tok::Ident && before > 0 &&
                (isPunct(t, before - 1, ",") ||
                 isPunct(t, before - 1, ":"))) {
                bool colon = isPunct(t, before - 1, ":");
                i = before - 2;
                if (colon) {
                    if (!isPunct(t, i, ")"))
                        return false;
                    pc = i;
                    po = matchBackward(t, i, '(', ')');
                    return po != t.size();
                }
                continue;
            }
            if (t[i].text[0] != ')')
                return false;
            pc = i;
            po = openIdx;
            if (po == 0)
                return false;
            const Token &h = t[po - 1];
            if (h.kind != Tok::Ident)
                // `](...)` lambda, `)(...)` function pointer, ...
                return isPunct(t, po - 1, "]");
            return kControlHeads.count(h.text) == 0;
        }
        return false;
    }
    return false;
}

/** Return-type identifier nearest @p nameIdx, skipping the `X::`
 * qualifier chain, template argument lists and `*`/`&`. */
std::string
returnTypeBefore(const std::vector<Token> &t, size_t nameIdx,
                 bool dtor)
{
    if (nameIdx == 0)
        return {};
    size_t p = nameIdx - 1;
    if (dtor) {
        if (p == 0)
            return {};
        --p;    // the `~`
    }
    for (int guard = 0; guard < 16 && p > 1; ++guard) {
        if (isPunct(t, p, "::") && isIdent(t, p - 1))
            p -= 2;    // `X::` qualifier
        else
            break;
    }
    while (p > 0 && (isPunct(t, p, "*") || isPunct(t, p, "&")))
        --p;
    if (isPunct(t, p, ">")) {
        // Skip the template argument list backwards.
        int depth = 0;
        for (int guard = 0; guard < 64 && p > 0; ++guard, --p) {
            if (isPunct(t, p, ">"))
                ++depth;
            else if (isPunct(t, p, "<") && --depth == 0) {
                --p;
                break;
            }
        }
    }
    if (isIdent(t, p) && kNotReturnType.count(t[p].text) == 0 &&
        kControlHeads.count(t[p].text) == 0)
        return t[p].text;
    return {};
}

/** Class owning `X::f(...)` / `X::~X(...)`, or "". */
std::string
outOfLineClass(const std::vector<Token> &t, size_t nameIdx, bool dtor)
{
    size_t q = nameIdx;
    if (dtor) {
        if (q == 0)
            return {};
        --q;    // the `~`
    }
    if (q >= 2 && isPunct(t, q - 1, "::") && isIdent(t, q - 2))
        return t[q - 2].text;
    return {};
}

void
extractParams(const std::vector<Token> &t, FunctionDef &fn)
{
    std::vector<std::pair<size_t, size_t>> parts;
    splitArgs(t, fn.paramOpen + 1, fn.paramClose, parts);
    if (parts.size() == 1 && parts[0].second == parts[0].first + 1 &&
        isIdent(t, parts[0].first, "void"))
        parts.clear();
    if (parts.size() == 1 && parts[0].second <= parts[0].first)
        parts.clear();
    fn.minArity = 0;
    for (const auto &[b, e] : parts) {
        std::string name;
        bool defaulted = false;
        int depth = 0;
        for (size_t i = b; i < e; ++i) {
            if (isPunct(t, i, "(") || isPunct(t, i, "[") ||
                isPunct(t, i, "{"))
                ++depth;
            else if (isPunct(t, i, ")") || isPunct(t, i, "]") ||
                     isPunct(t, i, "}"))
                --depth;
            else if (depth == 0 && isPunct(t, i, "=")) {
                defaulted = true;
                break;
            } else if (isIdent(t, i)) {
                name = t[i].text;
            }
        }
        fn.params.push_back(std::move(name));
        if (!defaulted)
            ++fn.minArity;
    }
}

/** Dotted simple path ending at the `.`/`->` at @p dot, or "". */
std::string
receiverPath(const std::vector<Token> &t, size_t b, size_t dot)
{
    size_t i = dot;
    size_t lo = dot;
    while (i > b) {
        --i;
        if (isIdent(t, i)) {
            lo = i;
            if (i > b && (isPunct(t, i - 1, ".") ||
                          isPunct(t, i - 1, "->") ||
                          isPunct(t, i - 1, "::"))) {
                --i;
                continue;
            }
        }
        break;
    }
    if (!isIdent(t, lo) || lo == dot)
        return {};
    if (lo > b && (isPunct(t, lo - 1, ")") || isPunct(t, lo - 1, "]")))
        return {};
    std::string s;
    for (size_t k = lo; k < dot; ++k) {
        if (isIdent(t, k))
            s += t[k].text;
        else if (isPunct(t, k, ".") || isPunct(t, k, "->"))
            s += ".";
        else if (isPunct(t, k, "::"))
            s += "::";
        else
            return {};
    }
    return s;
}

void
extractCalls(const std::vector<Token> &t, const FunctionDef &fn,
             std::vector<CallSite> &out)
{
    size_t b = fn.bodyBegin + 1;
    size_t e = fn.bodyEnd;
    for (size_t i = b; i < e; ++i) {
        if (!isIdent(t, i) || !isPunct(t, i + 1, "("))
            continue;
        const std::string &name = t[i].text;
        if (kControlHeads.count(name) != 0)
            continue;
        CallSite cs;
        cs.name = name;
        cs.nameIdx = i;
        cs.line = t[i].line;
        if (i > b && (isPunct(t, i - 1, ".") || isPunct(t, i - 1, "->"))) {
            cs.recv = receiverPath(t, b, i - 1);
        } else if (i > b && isPunct(t, i - 1, "::")) {
            if (i >= 2 && isIdent(t, i - 2))
                cs.qual = t[i - 2].text;
        } else if (i > b && t[i - 1].kind == Tok::Ident &&
                   kCallPrecursors.count(t[i - 1].text) == 0) {
            continue;    // `Type name(args)` — a declaration, not a call
        }
        size_t close = matchForward(t, i + 1, '(', ')');
        if (close >= e)
            continue;
        if (close > i + 2)
            splitArgs(t, i + 2, close, cs.args);
        out.push_back(std::move(cs));
    }
}

/** Receiver-type environment: `Codec c`, `Codec &c`, `Codec *c`,
 * declared in the parameter list or body, for classes the graph knows
 * methods of. */
std::map<std::string, std::string>
localTypes(const std::vector<Token> &t, const FunctionDef &fn,
           const std::set<std::string> &classes)
{
    std::map<std::string, std::string> types;
    auto scan = [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            if (!isIdent(t, i) || classes.count(t[i].text) == 0)
                continue;
            if (isPunct(t, i + 1, "::") || isPunct(t, i + 1, "("))
                continue;    // qualifier or constructor call
            if (i > b && (isPunct(t, i - 1, ".") ||
                          isPunct(t, i - 1, "->")))
                continue;    // member access, not a type
            size_t j = i + 1;
            while (j < e && (isPunct(t, j, "&") || isPunct(t, j, "*") ||
                             isIdent(t, j, "const")))
                ++j;
            if (j >= e || !isIdent(t, j))
                continue;
            if (isPunct(t, j + 1, ",") || isPunct(t, j + 1, ")") ||
                isPunct(t, j + 1, ";") || isPunct(t, j + 1, "=") ||
                isPunct(t, j + 1, "(") || isPunct(t, j + 1, "{"))
                types[t[j].text] = t[i].text;
        }
    };
    scan(fn.paramOpen + 1, fn.paramClose);
    scan(fn.bodyBegin + 1, fn.bodyEnd);
    return types;
}

} // namespace

CallGraph
CallGraph::build(const std::vector<SourceFile> &files)
{
    std::vector<std::string> paths;
    std::vector<std::vector<Token>> merged;
    paths.reserve(files.size());
    merged.reserve(files.size());
    for (const SourceFile &f : files) {
        paths.push_back(f.path);
        merged.push_back(mergeOperators(Lexer(f.content).run()));
    }
    return build(std::move(paths), std::move(merged));
}

CallGraph
CallGraph::build(std::vector<std::string> paths,
                 std::vector<std::vector<Token>> merged)
{
    CallGraph g;
    g.paths_ = std::move(paths);
    g.toks_ = std::move(merged);

    // Pass 1: find every function definition, with class context.
    for (size_t fi = 0; fi < g.toks_.size(); ++fi) {
        const std::vector<Token> &t = g.toks_[fi];
        struct Frame
        {
            bool isClass;
            std::string cls;
        };
        std::vector<Frame> stack;
        std::string pendingClass;
        for (size_t i = 0; i < t.size(); ++i) {
            if (isIdent(t, i, "class") || isIdent(t, i, "struct")) {
                if (i > 0 && isIdent(t, i - 1, "enum"))
                    continue;
                if (isIdent(t, i + 1))
                    pendingClass = t[i + 1].text;
                continue;
            }
            if (isPunct(t, i, ";")) {
                pendingClass.clear();
                continue;
            }
            if (isPunct(t, i, "}")) {
                if (!stack.empty())
                    stack.pop_back();
                continue;
            }
            if (!isPunct(t, i, "{"))
                continue;
            if (!pendingClass.empty()) {
                stack.push_back({true, pendingClass});
                pendingClass.clear();
                continue;
            }
            size_t po = 0;
            size_t pc = 0;
            if (!startsFunctionBody(t, i, po, pc)) {
                stack.push_back({false, {}});
                continue;
            }
            size_t m = matchForward(t, i, '{', '}');
            if (m >= t.size()) {
                stack.push_back({false, {}});
                continue;
            }
            FunctionDef fn;
            fn.fileIdx = fi;
            fn.paramOpen = po;
            fn.paramClose = pc;
            fn.bodyBegin = i;
            fn.bodyEnd = m;
            bool named = po > 0 && isIdent(t, po - 1);
            if (named) {
                bool dtor = po >= 2 && isPunct(t, po - 2, "~");
                size_t nameIdx = po - 1;
                fn.name = dtor ? "~" + t[nameIdx].text : t[nameIdx].text;
                fn.nameIdx = nameIdx;
                fn.line = t[nameIdx].line;
                fn.cls = outOfLineClass(t, nameIdx, dtor);
                if (fn.cls.empty())
                    for (auto it = stack.rbegin(); it != stack.rend();
                         ++it)
                        if (it->isClass) {
                            fn.cls = it->cls;
                            break;
                        }
                fn.returnType = returnTypeBefore(t, nameIdx, dtor);
                extractParams(t, fn);
                if (fn.name != "operator")
                    g.fns_.push_back(std::move(fn));
            }
            i = m;    // bodies are consumed whole (lambdas stay inside)
        }
    }

    // Pass 2: call sites per function.
    g.calls_.resize(g.fns_.size());
    for (size_t id = 0; id < g.fns_.size(); ++id)
        extractCalls(g.toks_[g.fns_[id].fileIdx], g.fns_[id],
                     g.calls_[id]);

    // Pass 3: resolution by name + arity (+ receiver type for members).
    std::set<std::string> classes;
    std::map<std::string, std::vector<int>> freeByName;
    std::map<std::pair<std::string, std::string>, std::vector<int>>
        methods;
    for (size_t id = 0; id < g.fns_.size(); ++id) {
        const FunctionDef &fn = g.fns_[id];
        if (fn.cls.empty())
            freeByName[fn.name].push_back(static_cast<int>(id));
        else {
            classes.insert(fn.cls);
            methods[{fn.cls, fn.name}].push_back(static_cast<int>(id));
        }
    }
    auto pickByArity = [&](const std::vector<int> *cands,
                           size_t argc) -> int {
        if (cands == nullptr)
            return -1;
        int hit = -1;
        for (int id : *cands) {
            const FunctionDef &fn = g.fns_[static_cast<size_t>(id)];
            if (argc < fn.minArity || argc > fn.params.size())
                continue;
            if (hit >= 0)
                return -1;    // ambiguous: degrade to unknown callee
            hit = id;
        }
        return hit;
    };
    auto lookup = [&](auto &table, const auto &key) ->
        const std::vector<int> * {
            auto it = table.find(key);
            return it == table.end() ? nullptr : &it->second;
        };
    for (size_t id = 0; id < g.fns_.size(); ++id) {
        const FunctionDef &caller = g.fns_[id];
        std::map<std::string, std::string> types;
        bool typed = false;
        for (CallSite &cs : g.calls_[id]) {
            size_t argc = cs.args.size();
            if (!cs.recv.empty()) {
                if (!typed) {
                    types = localTypes(g.toks_[caller.fileIdx], caller,
                                       classes);
                    typed = true;
                }
                std::string cls;
                if (cs.recv == "this")
                    cls = caller.cls;
                else if (cs.recv.find('.') == std::string::npos) {
                    auto it = types.find(cs.recv);
                    if (it != types.end())
                        cls = it->second;
                }
                if (!cls.empty())
                    cs.target = pickByArity(
                        lookup(methods, std::make_pair(cls, cs.name)),
                        argc);
            } else if (!cs.qual.empty()) {
                if (classes.count(cs.qual) != 0)
                    cs.target = pickByArity(
                        lookup(methods,
                               std::make_pair(cs.qual, cs.name)),
                        argc);
                else
                    cs.target =
                        pickByArity(lookup(freeByName, cs.name), argc);
            } else {
                if (!caller.cls.empty())
                    cs.target = pickByArity(
                        lookup(methods,
                               std::make_pair(caller.cls, cs.name)),
                        argc);
                if (cs.target < 0)
                    cs.target =
                        pickByArity(lookup(freeByName, cs.name), argc);
            }
        }
    }

    // Lookup index: per file, (bodyBegin, id) sorted.
    g.byFile_.resize(g.toks_.size());
    for (size_t id = 0; id < g.fns_.size(); ++id)
        g.byFile_[g.fns_[id].fileIdx].emplace_back(
            g.fns_[id].bodyBegin, static_cast<int>(id));
    for (auto &v : g.byFile_)
        std::sort(v.begin(), v.end());

    // Pass 4: Tarjan SCCs, emitted callee-first (bottom-up).
    size_t n = g.fns_.size();
    std::vector<int> index(n, -1);
    std::vector<int> low(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<int> stack;
    int next = 0;
    struct Work
    {
        int v;
        size_t edge;
    };
    for (size_t root = 0; root < n; ++root) {
        if (index[root] >= 0)
            continue;
        std::vector<Work> work{{static_cast<int>(root), 0}};
        while (!work.empty()) {
            Work &w = work.back();
            size_t v = static_cast<size_t>(w.v);
            if (w.edge == 0) {
                index[v] = low[v] = next++;
                stack.push_back(w.v);
                onStack[v] = true;
            }
            bool descended = false;
            while (w.edge < g.calls_[v].size()) {
                int to = g.calls_[v][w.edge++].target;
                if (to < 0)
                    continue;
                size_t u = static_cast<size_t>(to);
                if (index[u] < 0) {
                    work.push_back({to, 0});
                    descended = true;
                    break;
                }
                if (onStack[u])
                    low[v] = std::min(low[v], index[u]);
            }
            if (descended)
                continue;
            if (low[v] == index[v]) {
                std::vector<int> scc;
                int u;
                do {
                    u = stack.back();
                    stack.pop_back();
                    onStack[static_cast<size_t>(u)] = false;
                    scc.push_back(u);
                } while (u != w.v);
                g.sccs_.push_back(std::move(scc));
            }
            int done = w.v;
            work.pop_back();
            if (!work.empty()) {
                size_t p = static_cast<size_t>(work.back().v);
                low[p] = std::min(low[p], low[static_cast<size_t>(done)]);
            }
        }
    }
    return g;
}

int
CallGraph::functionAt(size_t fileIdx, size_t tokIdx) const
{
    if (fileIdx >= byFile_.size())
        return -1;
    const auto &fns = byFile_[fileIdx];
    auto it = std::upper_bound(
        fns.begin(), fns.end(), tokIdx,
        [](size_t v, const std::pair<size_t, int> &p) {
            return v < p.first;
        });
    if (it == fns.begin())
        return -1;
    --it;
    const FunctionDef &fn = fns_[static_cast<size_t>(it->second)];
    return fn.bodyBegin < tokIdx && tokIdx < fn.bodyEnd ? it->second
                                                        : -1;
}

const CallSite *
CallGraph::callAt(size_t fileIdx, size_t tokIdx) const
{
    int id = functionAt(fileIdx, tokIdx);
    if (id < 0)
        return nullptr;
    const auto &calls = calls_[static_cast<size_t>(id)];
    auto it = std::lower_bound(calls.begin(), calls.end(), tokIdx,
                               [](const CallSite &cs, size_t v) {
                                   return cs.nameIdx < v;
                               });
    if (it != calls.end() && it->nameIdx == tokIdx)
        return &*it;
    return nullptr;
}

} // namespace nxcommon
