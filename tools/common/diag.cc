/**
 * @file
 * Shared diagnostic formatting: the one text renderer and the one JSON
 * emitter every analyzer in tools/ uses. See diag.h for the schema.
 */

#include "common/diag.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace nxcommon {

namespace {

/** Minimal JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

bool
knownRule(const std::vector<RuleInfo> &rules, std::string_view id)
{
    return std::any_of(rules.begin(), rules.end(),
                       [&](const RuleInfo &r) { return r.id == id; });
}

std::string
formatText(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
           f.message;
}

std::string
formatJson(std::string_view tool, const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\"tool\": \"" << jsonEscape(tool) << "\", \"schema\": 1, "
       << "\"count\": " << findings.size() << ", \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i == 0 ? "\n" : ",\n")
           << "  {\"file\": \"" << jsonEscape(f.file) << "\", "
           << "\"line\": " << f.line << ", "
           << "\"rule\": \"" << jsonEscape(f.rule) << "\", "
           << "\"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    os << (findings.empty() ? "]}\n" : "\n]}\n");
    return os.str();
}

std::string
formatSarif(std::string_view tool, const std::vector<RuleInfo> &rules,
            const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
          "master/Schemata/sarif-schema-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"" << jsonEscape(tool) << "\",\n"
       << "          \"rules\": [";
    for (size_t i = 0; i < rules.size(); ++i)
        os << (i == 0 ? "\n" : ",\n")
           << "            {\"id\": \"" << jsonEscape(rules[i].id)
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(rules[i].summary) << "\"}}";
    os << (rules.empty() ? "]\n" : "\n          ]\n")
       << "        }\n"
       << "      },\n"
       << "      \"results\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i == 0 ? "\n" : ",\n")
           << "        {\"ruleId\": \"" << jsonEscape(f.rule)
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(f.message) << "\"}, \"locations\": [{"
           << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
           << (f.line > 0 ? f.line : 1) << "}}}]}";
    }
    os << (findings.empty() ? "]\n" : "\n      ]\n")
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

} // namespace nxcommon
