#!/usr/bin/env sh
# Run all five in-tree analyzers (nxlint, nxdeps, nxtaint, nxstate,
# nxown) over just the files changed on this branch — the incremental
# pre-push loop. Whole-tree checks (include graph, lock order,
# protocol declarations in headers, interprocedural summaries) still
# see the entire tree; only the *reported* findings are filtered to
# the changed files, so a change can never silently break something
# it doesn't touch without CI's full sweep catching it.
#
# Usage: tools/analyze_changed.sh [<base-ref>] [-- <analyzer-args>...]
#
#   base-ref        diff base (default: origin/main when it exists,
#                   HEAD~1 otherwise). Uncommitted changes are always
#                   included.
#   analyzer-args   everything after `--` is forwarded verbatim to
#                   every analyzer invocation (e.g. -- --format=sarif).
#
# Environment:
#   NXSIM_ANALYZE_BINDIR   build tree holding the analyzer binaries
#                          (default: first of build, build-ci that has
#                          them).
#
# Exit status: 0 when every analyzer is clean on the changed files,
# 1 when any reported findings, 2 on usage/build errors.
set -eu

cd "$(dirname "$0")/.."

# Operands: an optional base ref, then `--` + analyzer args. After
# this block "$@" holds exactly the forwarded analyzer args.
base=""
if [ $# -gt 0 ] && [ "$1" != "--" ]; then
    base=$1
    shift
fi
if [ $# -gt 0 ]; then
    if [ "$1" = "--" ]; then
        shift
    else
        echo "analyze_changed: unexpected operand '$1' (usage: tools/analyze_changed.sh [<base-ref>] [-- <analyzer-args>...])" >&2
        exit 2
    fi
fi

if [ -z "$base" ]; then
    if git rev-parse --verify origin/main >/dev/null 2>&1; then
        base=origin/main
    else
        base=HEAD~1
    fi
fi

# Changed + uncommitted source files, analyzer extensions only,
# deduplicated, still existing (deletions drop out). The list is
# appended to the positional parameters via `set --` so names with
# spaces survive intact; -z/NUL would be cleaner but POSIX sh cannot
# split on NUL, and newline-safe is enough for a source tree that
# forbids newlines in filenames.
tmplist=$(mktemp)
trap 'rm -f "$tmplist"' EXIT INT TERM
{ git diff --name-only "$base" 2>/dev/null || true
  git diff --name-only 2>/dev/null || true
  git diff --name-only --cached 2>/dev/null || true
} | grep -E '\.(h|hpp|cc|cpp)$' | sort -u > "$tmplist" || true

nfiles=0
while IFS= read -r f; do
    if [ -f "$f" ]; then
        nfiles=$((nfiles + 1))
        set -- "$@" "$f"
    fi
done < "$tmplist"

if [ "$nfiles" = 0 ]; then
    echo "analyze_changed: no changed source files vs $base"
    exit 0
fi

# Any configured build tree works; prefer an explicit override, then
# the dev one.
bindir=${NXSIM_ANALYZE_BINDIR:-}
if [ -n "$bindir" ] && [ ! -x "$bindir/tools/nxlint/nxlint" ]; then
    echo "analyze_changed: NXSIM_ANALYZE_BINDIR=$bindir has no built analyzers" >&2
    exit 2
fi
if [ -z "$bindir" ]; then
    for d in build build-ci; do
        if [ -x "$d/tools/nxlint/nxlint" ]; then
            bindir=$d
            break
        fi
    done
fi
if [ -z "$bindir" ]; then
    echo "analyze_changed: no built analyzers found (run: cmake -B build -S . && cmake --build build)" >&2
    exit 2
fi

echo "analyze_changed: $nfiles files vs $base"
status=0
for tool in nxlint nxdeps nxtaint nxstate nxown; do
    echo "--- $tool ---"
    # "$@" = forwarded analyzer args followed by the changed files.
    if ! "$bindir/tools/$tool/$tool" --root=. "$@"; then
        status=1
    fi
done
exit $status
