#!/usr/bin/env sh
# Run all four in-tree analyzers (nxlint, nxdeps, nxtaint, nxstate)
# over just the files changed on this branch — the incremental
# pre-push loop. Whole-tree checks (include graph, lock order,
# protocol declarations in headers) still see the entire tree; only
# the *reported* findings are filtered to the changed files, so a
# change can never silently break something it doesn't touch without
# CI's full sweep catching it.
#
# Usage: tools/analyze_changed.sh [<base-ref>] [-- <analyzer-args>...]
#
#   base-ref   diff base (default: origin/main when it exists,
#              HEAD~1 otherwise). Uncommitted changes are always
#              included.
#
# Exit status: 0 when every analyzer is clean on the changed files,
# 1 when any reported findings, 2 on usage/build errors.
set -eu

cd "$(dirname "$0")/.."

base=${1:-}
if [ -z "$base" ]; then
    if git rev-parse --verify origin/main >/dev/null 2>&1; then
        base=origin/main
    else
        base=HEAD~1
    fi
fi

# Changed + uncommitted source files, analyzer extensions only,
# deduplicated, still existing (deletions drop out).
changed=$( { git diff --name-only "$base" 2>/dev/null || true; \
             git diff --name-only 2>/dev/null || true; \
             git diff --name-only --cached 2>/dev/null || true; } |
    grep -E '\.(h|hpp|cc|cpp)$' | sort -u) || true
existing=""
for f in $changed; do
    [ -f "$f" ] && existing="$existing $f"
done

if [ -z "$existing" ]; then
    echo "analyze_changed: no changed source files vs $base"
    exit 0
fi

# Any configured build tree works; prefer the dev one.
bindir=""
for d in build build-ci; do
    if [ -x "$d/tools/nxlint/nxlint" ]; then
        bindir=$d
        break
    fi
done
if [ -z "$bindir" ]; then
    echo "analyze_changed: no built analyzers found (run: cmake -B build -S . && cmake --build build)" >&2
    exit 2
fi

echo "analyze_changed: $(echo "$existing" | wc -w) files vs $base"
status=0
for tool in nxlint nxdeps nxtaint nxstate; do
    echo "--- $tool ---"
    # shellcheck disable=SC2086
    if ! "$bindir/tools/$tool/$tool" --root=. $existing; then
        status=1
    fi
done
exit $status
