/**
 * @file
 * nxown implementation. See nxown.h for the contract and the rule
 * table, and src/util/ownership.h for the annotation vocabulary.
 *
 * Pipeline:
 *
 *   1. Harvest — scan every file's token stream for
 *      NXSIM_ACQUIRES/RELEASES/TRANSFERS, walking backward from each
 *      macro (over qualifiers and sibling NXSIM_* annotation groups)
 *      to the parameter list and name of the function it annotates.
 *      Classify releases: destructor -> RAII-holder marker, method of
 *      a holder class -> receiver release, >= 1 parameter -> by-arg
 *      release, otherwise drain-all.
 *   2. Summaries — over the shared call graph in bottom-up SCC order,
 *      derive per-function facts: returns-a-held-handle (the helper
 *      acts as an acquirer at its call sites), releases-its-parameter
 *      (the helper consumes the caller's handle), drains-a-tag.
 *   3. Walk — each function body as a CFG (if/else fork+join, loop
 *      bodies twice, early returns terminate a path), tracking each
 *      bound handle's possible-state set {Held, Released, Moved}.
 *      Leaks are exists-path (any exit that can still hold fires);
 *      double-release / release-after-transfer are must (every
 *      possible state agrees) so branchy code never yields
 *      maybe-findings.
 *
 * Deliberate under-approximations, all in the no-false-positive
 * direction: only simple `var = ...acquire...` bindings are tracked
 * (an acquire result that is not bound escapes untracked); a condition
 * or contract macro mentioning the handle marks it conditional and
 * exits stop counting as leaks; passing a handle whole to an unknown
 * callee transfers it; passing a member path (`f(r.ticket)`) is a
 * possible transfer and also marks the handle conditional.
 */

#include "nxown/nxown.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "common/allow.h"
#include "common/callgraph.h"
#include "common/tokens.h"

namespace nxown {

namespace {

using nxcommon::Allow;
using nxcommon::CallGraph;
using nxcommon::CallSite;
using nxcommon::FunctionDef;
using nxcommon::isIdent;
using nxcommon::isPunct;
using nxcommon::matchBackward;
using nxcommon::matchForward;
using nxcommon::splitArgs;
using nxlex::Token;

const std::vector<RuleInfo> kRules = {
    {"own-leak",
     "a path can exit the function still holding an acquired handle"},
    {"own-double-release",
     "handle released again after every path already released it"},
    {"own-release-unacquired",
     "handle released after its ownership was transferred away"},
    {"own-annotation",
     "malformed NXSIM_ACQUIRES/NXSIM_RELEASES/NXSIM_TRANSFERS annotation"},
    {"bare-allow", "allow() without a justification or with an unknown rule"},
    {"stale-allow", "allow() that no longer suppresses anything"},
    {"io-error", "file could not be read"},
};

bool
isContract(std::string_view name)
{
    return name == "NXSIM_EXPECT" || name == "NXSIM_ENSURE" ||
           name == "NXSIM_ASSERT" || name == "FUZZ_CHECK";
}

// ---------------------------------------------------------------------------
// Annotation harvest
// ---------------------------------------------------------------------------

/** How a NXSIM_RELEASES function consumes handles. */
enum class RelKind
{
    Receiver, ///< method of a holder class: `lease.release()`
    ByArg,    ///< consumes the handle rooted at an argument: `wait(r.ticket)`
    DrainAll, ///< releases every live handle of the tag: `drainAndStop()`
};

/** One raw annotation, before classification. */
struct RawAnn
{
    int macro = 0; ///< 0 = ACQUIRES, 1 = RELEASES, 2 = TRANSFERS
    std::string tag;
    std::string fn;  ///< annotated function name ("~X" for destructors)
    std::string cls; ///< enclosing class, "" at namespace scope
    std::string ret; ///< return type identifier nearest the name
    size_t nParams = 0;
    bool isDtor = false;
};

/** Classified annotation tables, global across the analyzed file set. */
struct Tables
{
    struct Acq
    {
        std::string tag;
        bool raii = false; ///< holder class has a RELEASES destructor
    };
    std::map<std::string, Acq> acquires;
    std::map<std::string, std::pair<std::string, RelKind>> releases;
    std::map<std::string, std::string> transfers;
};

int
macroIndex(std::string_view name)
{
    if (name == "NXSIM_ACQUIRES")
        return 0;
    if (name == "NXSIM_RELEASES")
        return 1;
    if (name == "NXSIM_TRANSFERS")
        return 2;
    return -1;
}

/**
 * Walk backward from the macro token at @p m over qualifiers (const,
 * noexcept, ref-qualifiers) and sibling NXSIM_* annotation groups to
 * the annotated function's parameter list. Fills @p ann's fn/ret/
 * nParams/isDtor; false when the macro is not attached to a function
 * declaration.
 */
bool
findAnnotatedFunction(const std::vector<Token> &t, size_t m, RawAnn &ann)
{
    size_t k = m;
    while (k > 0) {
        --k;
        if (isPunct(t, k, ")")) {
            size_t o = matchBackward(t, k, '(', ')');
            if (o >= t.size() || o == 0)
                return false;
            if (isIdent(t, o - 1) &&
                t[o - 1].text.rfind("NXSIM_", 0) == 0) {
                k = o - 1; // skip a preceding annotation group whole
                continue;
            }
            if (!isIdent(t, o - 1))
                return false;
            ann.fn = t[o - 1].text;
            ann.isDtor = o >= 2 && isPunct(t, o - 2, "~");
            if (ann.isDtor)
                ann.fn = "~" + ann.fn;
            if (o + 1 < k && !(k == o + 2 && isIdent(t, o + 1, "void"))) {
                std::vector<std::pair<size_t, size_t>> args;
                splitArgs(t, o + 1, k, args);
                ann.nParams = args.size();
            }
            if (!ann.isDtor) {
                size_t p = o - 2;
                while (p > 0 && (isPunct(t, p, "*") || isPunct(t, p, "&") ||
                                 isPunct(t, p, "&&")))
                    --p;
                if (isIdent(t, p))
                    ann.ret = t[p].text;
            }
            return true;
        }
        if (isIdent(t, k) &&
            (t[k].text == "const" || t[k].text == "noexcept" ||
             t[k].text == "override" || t[k].text == "final"))
            continue;
        if (isPunct(t, k, "&") || isPunct(t, k, "&&"))
            continue;
        return false;
    }
    return false;
}

/**
 * Harvest every ownership annotation in one file. Maintains a brace
 * stack so in-class declarations know their enclosing class; malformed
 * annotations become own-annotation findings.
 */
void
harvestFile(const std::vector<Token> &t, std::string_view file,
            std::vector<RawAnn> &anns, std::vector<Finding> &findings)
{
    std::vector<std::string> stack; // class name per '{', "" otherwise
    std::string pendingClass;
    for (size_t i = 0; i < t.size(); ++i) {
        if (isIdent(t, i, "class") || isIdent(t, i, "struct")) {
            if (!(i > 0 && isIdent(t, i - 1, "enum")) && isIdent(t, i + 1))
                pendingClass = t[i + 1].text;
            continue;
        }
        if (isPunct(t, i, ";")) {
            pendingClass.clear();
            continue;
        }
        if (isPunct(t, i, "{")) {
            stack.push_back(pendingClass);
            pendingClass.clear();
            continue;
        }
        if (isPunct(t, i, "}")) {
            if (!stack.empty())
                stack.pop_back();
            continue;
        }
        if (!isIdent(t, i))
            continue;
        int mi = macroIndex(t[i].text);
        if (mi < 0 || !isPunct(t, i + 1, "("))
            continue;
        int line = t[i].line;
        size_t close = matchForward(t, i, '(', ')');
        if (close != i + 3 || !isIdent(t, i + 2)) {
            findings.push_back({std::string(file), line, "own-annotation",
                                t[i].text +
                                    " needs a single identifier tag"});
            continue;
        }
        RawAnn ann;
        ann.macro = mi;
        ann.tag = t[i + 2].text;
        ann.cls = stack.empty() ? "" : stack.back();
        if (!findAnnotatedFunction(t, i, ann)) {
            findings.push_back({std::string(file), line, "own-annotation",
                                t[i].text +
                                    " is not attached to a function "
                                    "declaration"});
            continue;
        }
        anns.push_back(std::move(ann));
    }
}

Tables
classify(const std::vector<RawAnn> &anns, const Options &opt)
{
    // Holder types: whatever the acquire functions return; RAII holder
    // types additionally declare a RELEASES destructor.
    std::set<std::string> holders;
    std::set<std::pair<std::string, std::string>> raii; // (class, tag)
    for (const RawAnn &a : anns) {
        if (a.macro == 1 && opt.ignoreReleaseTags.count(a.tag) != 0)
            continue; // the inversion knob drops RAII markers too
        if (a.macro == 0 && !a.ret.empty() && a.ret != "void" &&
            a.ret != "auto")
            holders.insert(a.ret);
        if (a.macro == 1 && a.isDtor && !a.cls.empty())
            raii.insert({a.cls, a.tag});
    }
    Tables tb;
    for (const RawAnn &a : anns) {
        if (a.macro == 0) {
            tb.acquires[a.fn] = {a.tag, raii.count({a.ret, a.tag}) != 0};
        } else if (a.macro == 1) {
            if (opt.ignoreReleaseTags.count(a.tag) != 0 || a.isDtor)
                continue;
            RelKind kind = RelKind::DrainAll;
            if (holders.count(a.cls) != 0)
                kind = RelKind::Receiver;
            else if (a.nParams >= 1)
                kind = RelKind::ByArg;
            tb.releases[a.fn] = {a.tag, kind};
        } else {
            tb.transfers[a.fn] = a.tag;
        }
    }
    return tb;
}

// ---------------------------------------------------------------------------
// The per-function CFG walk
// ---------------------------------------------------------------------------

/** Derived interprocedural facts about one function. */
struct OwnSummary
{
    std::string returnsTag;              ///< returns a held handle of tag
    std::map<size_t, std::string> consumes; ///< param index -> released tag
    std::set<std::string> drains;        ///< drains every handle of tag
};

constexpr unsigned kHeld = 1;
constexpr unsigned kReleased = 2;
constexpr unsigned kMoved = 4;

/** One tracked handle: possible-state set plus provenance. */
struct Handle
{
    std::string tag;
    std::string what;       ///< acquire description for the message
    unsigned states = kHeld;
    bool guarded = false;   ///< a condition/contract mentioned it
    bool raii = false;      ///< holder type has a RELEASES destructor
    int line = 0;           ///< acquire line
};

using PathState = std::map<std::string, Handle>;

PathState
joinState(const PathState &a, const PathState &b)
{
    PathState out = a;
    for (const auto &kv : b) {
        auto it = out.find(kv.first);
        if (it == out.end()) {
            out.insert(kv);
        } else {
            it->second.states |= kv.second.states;
            it->second.guarded = it->second.guarded || kv.second.guarded;
        }
    }
    return out;
}

class Walk
{
  public:
    Walk(const CallGraph &g, const Tables &tables,
         std::vector<OwnSummary> &sums, const FunctionDef &fn,
         std::string_view file, OwnSummary *sum, std::vector<Finding> *out)
        : g_(g), t_(g.tokens(fn.fileIdx)), tables_(tables), sums_(sums),
          fn_(fn), file_(file), sum_(sum), out_(out)
    {
        for (size_t p = 0; p < fn.params.size(); ++p)
            if (!fn.params[p].empty())
                paramIdx_[fn.params[p]] = p;
    }

    /** Walk the body; in summary mode returns whether the summary
     * changed (the bottom-up fixpoint's convergence signal). */
    bool
    run()
    {
        if (fn_.bodyEnd <= fn_.bodyBegin)
            return false;
        PathState st;
        if (!walk(fn_.bodyBegin + 1, fn_.bodyEnd, st))
            leakCheck(st);
        return sumChanged_;
    }

  private:
    // -- CFG skeleton (same shape as nxstate's BodyCheck) -----------------

    bool
    walk(size_t b, size_t e, PathState &st)
    {
        bool terminated = false;
        size_t i = b;
        while (i < e && !terminated)
            i = step(i, e, st, &terminated);
        return terminated;
    }

    size_t
    step(size_t i, size_t e, PathState &st, bool *terminated)
    {
        const std::vector<Token> &t = t_;
        if (isPunct(t, i, "{")) {
            size_t close = matchForward(t, i, '{', '}');
            if (walk(i + 1, std::min(close, e), st))
                *terminated = true;
            return close + 1;
        }
        if (isPunct(t, i, ";") || isPunct(t, i, ":"))
            return i + 1;
        if (isIdent(t, i, "if")) {
            size_t cOpen = i + 1;
            if (isIdent(t, cOpen, "constexpr"))
                ++cOpen;
            if (!isPunct(t, cOpen, "("))
                return i + 1;
            size_t cClose = matchForward(t, cOpen, '(', ')');
            processCond(cOpen + 1, cClose, st);
            PathState thenSt = st;
            bool thenTerm = false;
            size_t k = step(cClose + 1, e, thenSt, &thenTerm);
            if (isIdent(t, k, "else")) {
                PathState elseSt = st;
                bool elseTerm = false;
                k = step(k + 1, e, elseSt, &elseTerm);
                if (thenTerm && elseTerm)
                    *terminated = true;
                else if (thenTerm)
                    st = std::move(elseSt);
                else if (elseTerm)
                    st = std::move(thenSt);
                else
                    st = joinState(thenSt, elseSt);
            } else if (!thenTerm) {
                st = joinState(st, thenSt);
            }
            return k;
        }
        if (isIdent(t, i, "for") || isIdent(t, i, "while")) {
            if (!isPunct(t, i + 1, "("))
                return i + 1;
            size_t cClose = matchForward(t, i + 1, '(', ')');
            processCond(i + 2, cClose, st);
            PathState once = st;
            bool bodyTerm = false;
            size_t k = step(cClose + 1, e, once, &bodyTerm);
            if (!bodyTerm) {
                PathState twice = once;
                bool term2 = false;
                step(cClose + 1, e, twice, &term2);
                once = joinState(once, twice);
            }
            st = joinState(st, once);
            return k;
        }
        if (isIdent(t, i, "do")) {
            bool bodyTerm = false;
            size_t k = step(i + 1, e, st, &bodyTerm);
            if (isIdent(t, k, "while") && isPunct(t, k + 1, "(")) {
                size_t cClose = matchForward(t, k + 1, '(', ')');
                processCond(k + 2, cClose, st);
                k = cClose + 1;
                if (isPunct(t, k, ";"))
                    ++k;
            }
            return k;
        }
        if (isIdent(t, i, "switch") && isPunct(t, i + 1, "(")) {
            size_t cClose = matchForward(t, i + 1, '(', ')');
            processCond(i + 2, cClose, st);
            if (!isPunct(t, cClose + 1, "{"))
                return cClose + 1;
            size_t bClose = matchForward(t, cClose + 1, '{', '}');
            PathState body = st;
            walk(cClose + 2, bClose, body); // linear approximation
            st = joinState(st, body);
            return bClose + 1;
        }
        if (isIdent(t, i, "case") || isIdent(t, i, "default")) {
            while (i < e && !isPunct(t, i, ":"))
                ++i;
            return i + 1;
        }
        if (isIdent(t, i, "return") || isIdent(t, i, "co_return"))
            return handleReturn(i, e, st, terminated);
        if (isIdent(t, i, "throw")) {
            size_t semi = findSemi(i + 1, e);
            processRange(i + 1, semi, st);
            *terminated = true;
            return semi + 1;
        }
        if (isIdent(t, i, "break") || isIdent(t, i, "continue") ||
            isIdent(t, i, "goto")) {
            size_t semi = findSemi(i, e);
            *terminated = true;
            return semi + 1;
        }
        if (isIdent(t, i, "try") || isIdent(t, i, "else"))
            return i + 1;
        if (isIdent(t, i, "catch") && isPunct(t, i + 1, "(")) {
            size_t cClose = matchForward(t, i + 1, '(', ')');
            PathState cSt = st;
            bool cTerm = false;
            size_t k = step(cClose + 1, e, cSt, &cTerm);
            if (!cTerm)
                st = joinState(st, cSt);
            return k;
        }
        size_t semi = findSemi(i, e);
        processRange(i, semi, st);
        return semi + 1;
    }

    /** First depth-0 `;` at or after @p i (depth over () [] {}). */
    size_t
    findSemi(size_t i, size_t e) const
    {
        int depth = 0;
        for (; i < e; ++i) {
            if (isPunct(t_, i, "(") || isPunct(t_, i, "[") ||
                isPunct(t_, i, "{"))
                ++depth;
            else if (isPunct(t_, i, ")") || isPunct(t_, i, "]") ||
                     isPunct(t_, i, "}"))
                --depth;
            else if (depth == 0 && isPunct(t_, i, ";"))
                return i;
        }
        return e;
    }

    // -- Statement semantics ----------------------------------------------

    size_t
    handleReturn(size_t i, size_t e, PathState &st, bool *terminated)
    {
        size_t semi = findSemi(i + 1, e);
        if (sum_ != nullptr && i + 1 < semi)
            recordReturn(i + 1, semi, st);
        std::string path = simplePath(i + 1, semi);
        auto it = st.find(rootOf(path));
        if (it != st.end())
            it->second.states = kMoved; // returned to the caller
        else
            processRange(i + 1, semi, st);
        *terminated = true;
        leakCheck(st);
        return semi + 1;
    }

    /** Condition range: evaluate side effects, then mark every handle
     * the condition mentions as conditional — the analyzer cannot
     * model the predicate, so exits stop counting as leaks. */
    void
    processCond(size_t b, size_t e, PathState &st)
    {
        processRange(b, e, st);
        guardMentions(b, e, st);
    }

    void
    guardMentions(size_t b, size_t e, PathState &st)
    {
        for (size_t i = b; i < e && i < t_.size(); ++i) {
            if (!isIdent(t_, i))
                continue;
            if (i > 0 && (isPunct(t_, i - 1, ".") ||
                          isPunct(t_, i - 1, "->") ||
                          isPunct(t_, i - 1, "::")))
                continue; // member/qualified name, not the handle
            auto it = st.find(t_[i].text);
            if (it != st.end())
                it->second.guarded = true;
        }
    }

    void
    processRange(size_t b, size_t e, PathState &st)
    {
        if (b >= e)
            return;
        // Contract macros abort on false: their arguments guard the
        // handles they mention, same as an if-condition.
        if (isIdent(t_, b) && isContract(t_[b].text) &&
            isPunct(t_, b + 1, "(")) {
            size_t close = matchForward(t_, b + 1, '(', ')');
            guardMentions(b + 2, std::min(close, e), st);
            return;
        }
        bindAcquire(b, e, st);
        for (size_t i = b; i + 1 < e; ++i) {
            if (isIdent(t_, i) && isPunct(t_, i + 1, "("))
                processCall(i, st);
        }
    }

    /** Track `var = ...acquire...` — the only binding shape followed.
     * An acquire result that is never bound escapes untracked (the
     * no-false-positive direction). */
    void
    bindAcquire(size_t b, size_t e, PathState &st)
    {
        int depth = 0;
        for (size_t i = b; i < e; ++i) {
            if (isPunct(t_, i, "(") || isPunct(t_, i, "[") ||
                isPunct(t_, i, "{"))
                ++depth;
            else if (isPunct(t_, i, ")") || isPunct(t_, i, "]") ||
                     isPunct(t_, i, "}"))
                --depth;
            else if (depth == 0 && isPunct(t_, i, "=")) {
                if (i > b && isIdent(t_, i - 1)) {
                    std::string tag, what;
                    bool raii = false;
                    if (findAcquire(i + 1, e, tag, raii, what)) {
                        Handle h;
                        h.tag = tag;
                        h.raii = raii;
                        h.what = what;
                        h.line = t_[i - 1].line;
                        st[t_[i - 1].text] = std::move(h);
                    }
                }
                return;
            }
        }
    }

    /** Is there an acquiring call in [b, e)? Annotated acquire
     * functions and resolved callees whose summary returns a held
     * handle both count. */
    bool
    findAcquire(size_t b, size_t e, std::string &tag, bool &raii,
                std::string &what)
    {
        for (size_t i = b; i + 1 < e; ++i) {
            if (!isIdent(t_, i) || !isPunct(t_, i + 1, "("))
                continue;
            auto acq = tables_.acquires.find(t_[i].text);
            if (acq != tables_.acquires.end()) {
                tag = acq->second.tag;
                raii = acq->second.raii;
                what = t_[i].text + "()";
                return true;
            }
            const CallSite *cs = g_.callAt(fn_.fileIdx, i);
            if (cs != nullptr && cs->target >= 0 &&
                !sums_[static_cast<size_t>(cs->target)].returnsTag.empty()) {
                tag = sums_[static_cast<size_t>(cs->target)].returnsTag;
                raii = false;
                what = t_[i].text + "() (returns a held handle)";
                return true;
            }
        }
        return false;
    }

    void
    processCall(size_t i, PathState &st)
    {
        const std::string &name = t_[i].text;
        if (tables_.acquires.count(name) != 0)
            return; // acquisition is handled at the binding
        size_t close = matchForward(t_, i + 1, '(', ')');
        std::vector<std::pair<size_t, size_t>> args;
        if (i + 2 < close)
            splitArgs(t_, i + 2, close, args);

        if (name == "move") { // std::move — explicit hand-off
            if (!args.empty()) {
                auto it = st.find(rootOf(simplePath(args[0])));
                if (it != st.end())
                    it->second.states = kMoved;
            }
            return;
        }

        auto rel = tables_.releases.find(name);
        if (rel != tables_.releases.end()) {
            applyRelease(i, rel->second.first, rel->second.second, args, st);
            return;
        }

        auto tr = tables_.transfers.find(name);
        if (tr != tables_.transfers.end()) {
            for (const auto &a : args) {
                std::string p = simplePath(a);
                auto it = st.find(rootOf(p));
                if (it != st.end() && it->second.tag == tr->second)
                    it->second.states = kMoved;
            }
            return;
        }

        const CallSite *cs = g_.callAt(fn_.fileIdx, i);
        if (cs != nullptr && cs->target >= 0) {
            // Resolved callee: apply its derived summary; its args are
            // visible, so nothing is conservatively transferred.
            const OwnSummary &s = sums_[static_cast<size_t>(cs->target)];
            for (const auto &[p, tag] : s.consumes) {
                if (p >= cs->args.size())
                    continue;
                std::string root = rootOf(simplePath(cs->args[p]));
                auto it = st.find(root);
                if (it != st.end() && it->second.tag == tag)
                    release(it->first, it->second, t_[i].line);
                else if (it == st.end())
                    recordParamConsume(root, tag);
            }
            for (const std::string &tag : s.drains)
                drainTag(tag, st);
            return;
        }

        // Unknown callee: a handle (or a member path of one, like
        // `f(r.ticket)`) passed as a whole argument is a *possible*
        // hand-off — the callee may have taken ownership, or may have
        // just observed it. Mark the handle possibly-moved and
        // conditional so neither a later exit nor a later release is
        // a finding. Only explicit transfers (std::move, `return h`,
        // NXSIM_TRANSFERS callees) move strongly.
        for (const auto &a : args) {
            std::string p = simplePath(a);
            if (p.empty())
                continue;
            auto it = st.find(rootOf(p));
            if (it == st.end())
                continue;
            it->second.states |= kMoved;
            it->second.guarded = true;
        }
    }

    void
    applyRelease(size_t i, const std::string &tag, RelKind kind,
                 const std::vector<std::pair<size_t, size_t>> &args,
                 PathState &st)
    {
        int line = t_[i].line;
        if (kind == RelKind::DrainAll) {
            drainTag(tag, st);
            if (sum_ != nullptr && sum_->drains.insert(tag).second)
                sumChanged_ = true;
            return;
        }
        if (kind == RelKind::Receiver) {
            std::string root = receiverRoot(i);
            if (root.empty())
                return; // receiver-less (the holder's own methods)
            auto it = st.find(root);
            if (it != st.end() && it->second.tag == tag)
                release(it->first, it->second, line);
            else if (it == st.end())
                recordParamConsume(root, tag);
            return;
        }
        for (const auto &a : args) {
            std::string root = rootOf(simplePath(a));
            if (root.empty())
                continue;
            auto it = st.find(root);
            if (it != st.end() && it->second.tag == tag)
                release(it->first, it->second, line);
            else if (it == st.end())
                recordParamConsume(root, tag);
        }
    }

    /** Release one handle, with the must-state checks. */
    void
    release(const std::string &name, Handle &h, int line)
    {
        if (h.states == kReleased)
            report("own-double-release", line,
                   "'" + name + "' (" + h.tag +
                       ") is released again — every path already "
                       "released it (acquired at line " +
                       std::to_string(h.line) + ")");
        else if (h.states == kMoved)
            report("own-release-unacquired", line,
                   "'" + name + "' (" + h.tag +
                       ") is released here but its ownership was "
                       "already transferred away on every path");
        h.states = kReleased;
    }

    void
    drainTag(const std::string &tag, PathState &st)
    {
        for (auto &[name, h] : st)
            if (h.tag == tag)
                h.states = kReleased;
    }

    /** Outermost identifier of a `a.b->c(...)` receiver chain ending
     * right before the callee name at @p i; "" for free calls. */
    std::string
    receiverRoot(size_t i) const
    {
        std::string root;
        size_t k = i;
        while (k >= 2 &&
               (isPunct(t_, k - 1, ".") || isPunct(t_, k - 1, "->")) &&
               isIdent(t_, k - 2)) {
            root = t_[k - 2].text;
            k -= 2;
        }
        return root;
    }

    // -- Summary recording -------------------------------------------------

    void
    recordReturn(size_t b, size_t e, PathState &st)
    {
        std::string tag;
        auto it = st.find(rootOf(simplePath(b, e)));
        if (it != st.end() && (it->second.states & kHeld) != 0)
            tag = it->second.tag;
        if (tag.empty()) {
            std::string what;
            bool raii = false;
            std::string found;
            if (findAcquire(b, e, found, raii, what))
                tag = found;
        }
        if (!tag.empty() && sum_->returnsTag.empty()) {
            sum_->returnsTag = tag;
            sumChanged_ = true;
        }
    }

    /** In summary mode, a release rooted at one of our parameters
     * means this function consumes the caller's handle. */
    void
    recordParamConsume(const std::string &root, const std::string &tag)
    {
        if (sum_ == nullptr)
            return;
        auto p = paramIdx_.find(root);
        if (p == paramIdx_.end())
            return;
        if (sum_->consumes.emplace(p->second, tag).second)
            sumChanged_ = true;
    }

    // -- Reporting ----------------------------------------------------------

    void
    leakCheck(const PathState &st)
    {
        if (sum_ != nullptr)
            return;
        for (const auto &[name, h] : st) {
            if ((h.states & kHeld) != 0 && !h.guarded && !h.raii)
                report("own-leak", h.line,
                       "'" + name + "' acquired from " + h.what + " (" +
                           h.tag +
                           ") can exit the function still held — "
                           "release, transfer, or return it on every "
                           "path");
        }
    }

    void
    report(const std::string &rule, int line, const std::string &msg)
    {
        if (out_ == nullptr)
            return;
        if (!seen_.insert(std::make_tuple(line, rule, msg)).second)
            return;
        out_->push_back({std::string(file_), line, rule, msg});
    }

    // -- Small token utilities ----------------------------------------------

    std::string
    simplePath(size_t b, size_t e) const
    {
        std::string out;
        for (size_t i = b; i < e && i < t_.size(); ++i) {
            if (isIdent(t_, i))
                out += t_[i].text;
            else if (isPunct(t_, i, ".") || isPunct(t_, i, "->") ||
                     isPunct(t_, i, "::"))
                out += ".";
            else
                return "";
        }
        return out;
    }

    std::string
    simplePath(const std::pair<size_t, size_t> &range) const
    {
        return simplePath(range.first, range.second);
    }

    static std::string
    rootOf(const std::string &path)
    {
        size_t dot = path.find('.');
        return dot == std::string::npos ? path : path.substr(0, dot);
    }

    const CallGraph &g_;
    const std::vector<Token> &t_;
    const Tables &tables_;
    std::vector<OwnSummary> &sums_;
    const FunctionDef &fn_;
    std::string_view file_;
    OwnSummary *sum_;             ///< non-null = summary mode
    std::vector<Finding> *out_;   ///< null in summary mode
    std::map<std::string, size_t> paramIdx_;
    std::set<std::tuple<int, std::string, std::string>> seen_;
    bool sumChanged_ = false;
};

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

std::vector<Finding>
analyzeFiles(const std::vector<SourceFile> &files, const Options &opt)
{
    size_t n = files.size();
    std::vector<std::vector<Allow>> allows(n);
    std::vector<std::vector<Finding>> pre(n);
    std::vector<std::vector<Token>> merged(n);
    std::vector<std::string> paths(n);
    for (size_t i = 0; i < n; ++i) {
        paths[i] = files[i].path;
        std::vector<Token> raw = nxlex::Lexer(files[i].content).run();
        allows[i] = nxcommon::collectAllows(raw, "nxown", kRules, pre[i],
                                            files[i].path);
        merged[i] = nxcommon::mergeOperators(raw);
    }
    CallGraph graph = CallGraph::build(std::move(paths), std::move(merged));

    std::vector<std::vector<Finding>> rawByFile(n);
    std::vector<RawAnn> anns;
    for (size_t i = 0; i < n; ++i)
        harvestFile(graph.tokens(i), files[i].path, anns, rawByFile[i]);
    Tables tables = classify(anns, opt);

    std::vector<OwnSummary> sums(graph.functions().size());
    graph.forEachBottomUp([&](int id) {
        const FunctionDef &fn = graph.functions()[static_cast<size_t>(id)];
        Walk w(graph, tables, sums, fn, files[fn.fileIdx].path,
               &sums[static_cast<size_t>(id)], nullptr);
        return w.run();
    });

    for (size_t id = 0; id < graph.functions().size(); ++id) {
        const FunctionDef &fn = graph.functions()[id];
        Walk w(graph, tables, sums, fn, files[fn.fileIdx].path, nullptr,
               &rawByFile[fn.fileIdx]);
        w.run();
    }

    std::vector<Finding> out;
    for (size_t i = 0; i < n; ++i) {
        std::vector<Finding> fileOut = std::move(pre[i]);
        nxcommon::applyAllows(std::move(rawByFile[i]), allows[i],
                              files[i].path, fileOut);
        nxcommon::sortFindings(fileOut);
        for (Finding &f : fileOut)
            out.push_back(std::move(f));
    }
    return out;
}

std::vector<Finding>
analyzeTree(const std::string &root, const Options &opt)
{
    nxcommon::TreeLoad load = nxcommon::loadTree(
        root, {"src", "tools", "bench", "examples", "fuzz"});
    std::vector<Finding> out = std::move(load.ioErrors);
    for (Finding &f : analyzeFiles(load.files, opt))
        out.push_back(std::move(f));
    return out;
}

std::string
format(const Finding &f)
{
    return nxcommon::formatText(f);
}

} // namespace nxown
