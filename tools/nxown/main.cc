/**
 * @file
 * nxown CLI — a thin ToolSpec over the shared analyzer driver
 * (tools/common/driver.h owns argument parsing, --format=json/sarif,
 * file lists and the 0/1/2 exit-code convention).
 *
 * Usage:
 *   nxown [--list-rules] [--format=text|json|sarif]
 *         [--root=<dir>] [<repo-root> | <file>...]
 *
 * nxown is a whole-tree tool: ownership annotations live in headers
 * and the call graph only means something globally, so explicit file
 * arguments analyze the tree at --root (default ".") and report only
 * findings landing in those files.
 */

#include <string>

#include "common/driver.h"
#include "nxown/nxown.h"

int
main(int argc, char **argv)
{
    nxcommon::ToolSpec spec;
    spec.name = "nxown";
    spec.usageArgs = "[--root=<dir>] [<repo-root> | <file>...]";
    spec.rules = &nxown::rules();
    spec.analyzeTree = [](const std::string &root) {
        return nxown::analyzeTree(root);
    };
    return nxcommon::runTool(argc, argv, spec);
}
