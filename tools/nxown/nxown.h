/**
 * @file
 * nxown — resource acquire/release discipline analyzer.
 *
 * The fifth member of the analyzer family (nxlint: tokens, nxdeps:
 * include edges, nxtaint: values, nxstate: lifecycles). nxown checks
 * *ownership*: resources that must be released exactly once on every
 * path. The accelerator protocol is built from exactly such hand-offs
 * — a pinned pool buffer is acquired, pasted, and must come back on
 * the success path, the busy-exhaustion fallback, the translation-
 * fault resubmit ladder, and every early return; JobServer tickets
 * are issued by submit and consumed by exactly one wait/drain.
 *
 * The vocabulary lives in src/util/ownership.h:
 *
 *     Lease acquire(size_t) NXSIM_ACQUIRES(pool_buffer);
 *     void release() NXSIM_RELEASES(pool_buffer);
 *     AsyncJob wait(Ticket t) NXSIM_RELEASES(job_ticket);
 *
 * A RELEASES destructor marks the class as an RAII holder (its
 * handles exit clean); RELEASES on a parameterless non-holder method
 * drains every live handle of the tag (JobServer::drainAndStop);
 * RELEASES with parameters consumes the handle rooted at an argument
 * (wait(sub.ticket) releases `sub`). NXSIM_TRANSFERS — and returning
 * a handle, std::move, or passing it whole to a function the analyzer
 * cannot see into — ends the local obligation without a release, so
 * unknown callees are never findings.
 *
 * Each function body is walked as a small CFG (shared shape with
 * nxstate: if/else forks and joins, loop bodies twice, early returns
 * terminate their path) tracking the *possible-state set* of every
 * handle. A leak fires when a path can exit still holding (exists-
 * path); double-release and release-after-transfer fire only when
 * every possible state agrees (must-semantics) — branchy code never
 * produces maybe-findings. A condition that mentions the handle
 * (`if (!r.accepted()) return 0;`, NXSIM_EXPECT contracts) marks it
 * conditional: the acquire may not have happened on this path, so
 * exits stop counting as leaks.
 *
 * Cross-function, the shared call graph (tools/common/callgraph.h)
 * supplies derived summaries computed bottom-up: a helper that
 * returns a still-held handle acts as an acquirer at its call sites,
 * and a helper that releases its parameter consumes the caller's
 * handle.
 *
 * Rules:
 *   own-leak               a path exits the function still holding
 *                          an acquired, non-RAII, untransferred
 *                          handle (reported at the acquire)
 *   own-double-release     a handle released on every path is
 *                          released again
 *   own-release-unacquired a handle transferred away on every path
 *                          is released locally
 *   own-annotation         malformed NXSIM_ACQUIRES/RELEASES/
 *                          TRANSFERS annotation
 *   bare-allow             allow() without a justification / unknown
 *                          rule
 *   stale-allow            allow() that no longer suppresses anything
 *   io-error               file could not be read
 *
 * Suppressions: `// nxown: allow(rule): why` (shared grammar).
 */

#ifndef NXSIM_NXOWN_NXOWN_H
#define NXSIM_NXOWN_NXOWN_H

#include <set>
#include <string>
#include <vector>

#include "common/diag.h"
#include "common/fileset.h"

namespace nxown {

using Finding = nxcommon::Finding;
using RuleInfo = nxcommon::RuleInfo;
using nxcommon::SourceFile;

/** Analysis knobs. */
struct Options
{
    /**
     * Drop every NXSIM_RELEASES annotation carrying one of these tags
     * before analyzing — the differential check: inverting the
     * release annotation of a resource must surface every real
     * acquire site as an own-leak (tests/test_nxown.cc holds the tree
     * to exactly that).
     */
    std::set<std::string> ignoreReleaseTags;
};

/** All rules, in the order they are checked. */
const std::vector<RuleInfo> &rules();

/** Analyze a set of files together: one annotation table, one call
 * graph, derived summaries bottom-up, then the per-function CFG walk.
 * Findings are grouped by file in input order. */
[[nodiscard]] std::vector<Finding>
analyzeFiles(const std::vector<SourceFile> &files,
             const Options &opt = {});

/**
 * Walk @p root's src/, tools/, bench/, examples/ and fuzz/ trees (or
 * @p root itself when none exist — fixture mode) and analyze every
 * *.h / *.cc file. tests/ is deliberately out: death tests
 * double-release on purpose. Unreadable files produce io-error.
 */
[[nodiscard]] std::vector<Finding>
analyzeTree(const std::string &root, const Options &opt = {});

/** Render a finding as `file:line: rule-id: message`. */
std::string format(const Finding &f);

} // namespace nxown

#endif // NXSIM_NXOWN_NXOWN_H
