/**
 * @file
 * nxtaint — taint analysis of untrusted input values, cross-function
 * via per-function summaries over the shared call graph.
 *
 * nxlint checks tokens and nxdeps checks include edges; nxtaint checks
 * *values*. Every historical decompressor exploit is the same bug: a
 * length/offset/count decoded from the untrusted bitstream reaches a
 * memory operation without a bounds check. nxtaint walks each function
 * body as a statement stream (built on the shared tools/common/lexer.h
 * tokenizer — deliberately no compiler frontend, same philosophy as
 * its siblings), marks taint sources, propagates through assignments
 * and arithmetic, and flags tainted values reaching memory sinks
 * without passing a sanitizer.
 *
 * On top of the statement walk, analyzeFiles()/analyzeTree() build the
 * project call graph (tools/common/callgraph.h) and compute one
 * summary per function in bottom-up SCC order: which parameters reach
 * a sink unchecked, which flow through to the return value, and
 * whether the function's own sources escape via `return`. Call sites
 * that resolve (by name + arity, receivers by declared type) are then
 * checked against the callee's summary — passing a tainted length to a
 * helper that memcpy's it unchecked is a finding at the call site with
 * the call chain printed, and a helper returning `br.readBits(16)`
 * taints its callers. Unresolved externals stay conservatively
 * tainted, exactly as before.
 *
 * Sources
 *   - results of BitReader-style member calls: readBits, peekBits,
 *     readBytes, readU16le, readU32le, peek, popByte, decode
 *   - loads from (and values of) parameters annotated NXSIM_UNTRUSTED
 *     (src/util/taint.h)
 *
 * Sinks (one rule each)
 *   - taint-copy-size   memcpy/memmove/memset/copyBytes size argument
 *   - taint-alloc-size  resize/reserve/assign first arg, 3-arg insert
 *                       count arg
 *   - taint-index       array/container subscript
 *   - taint-shift       shift amount (RHS of << or >>)
 *   - taint-loop-bound  for/while condition comparing against a
 *                       tainted bound
 *
 * Sanitizers (clear the taint from then on in the function)
 *   - a comparison against the value in an if condition, switch head,
 *     or NXSIM_EXPECT/NXSIM_ENSURE/NXSIM_ASSERT contract
 *   - wrapping in nx::checked_cast / nx::truncate_cast / std::min /
 *     std::clamp
 *   - bit-masking (& constant) or modulo (% constant) with a literal
 *     or kConstant
 *   - an explicit suppression where the finding fires:
 *         // nxtaint: allow(rule-id): why this flow is bounded
 *     (same grammar and placement rules as nxlint; a bare or unused
 *     allow is itself a finding: bare-allow / stale-allow)
 *
 * The analysis is intra-procedural and flow-approximate: a sanitizer
 * anywhere earlier in the function body (in statement order) counts as
 * dominating. That trades soundness corner cases for zero false
 * positives on this codebase's idiom — decode loops check before they
 * write, and the checker's job is to keep it that way.
 */

#ifndef NXSIM_NXTAINT_NXTAINT_H
#define NXSIM_NXTAINT_NXTAINT_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"
#include "common/fileset.h"

namespace nxtaint {

/** One diagnostic (the shared analyzer-family shape). */
using Finding = nxcommon::Finding;

/** Rule metadata for --list-rules and the docs. */
using RuleInfo = nxcommon::RuleInfo;

/** All rules, in the order they are checked. */
const std::vector<RuleInfo> &rules();

/** Analyze one file given as an in-memory buffer (a one-file
 * analyzeFiles: cross-function flow still works within the file). */
std::vector<Finding> analyzeFile(std::string_view path,
                                 std::string_view content);

/** Analyze a set of files together: one call graph, per-function
 * summaries bottom-up, then the findings pass with summaries in
 * hand. Findings are grouped by file in input order. */
std::vector<Finding>
analyzeFiles(const std::vector<nxcommon::SourceFile> &files);

/**
 * Walk @p root's src/ tree (or @p root itself when it is a bare
 * directory of sources) and analyze every *.h / *.cc file. Unreadable
 * files produce an "io-error" finding.
 */
std::vector<Finding> analyzeTree(const std::string &root);

/** Render a finding as `file:line: rule-id: message`. */
std::string format(const Finding &f);

} // namespace nxtaint

#endif // NXSIM_NXTAINT_NXTAINT_H
