/**
 * @file
 * nxtaint — intra-procedural taint analysis of untrusted input values.
 *
 * nxlint checks tokens and nxdeps checks include edges; nxtaint checks
 * *values*. Every historical decompressor exploit is the same bug: a
 * length/offset/count decoded from the untrusted bitstream reaches a
 * memory operation without a bounds check. nxtaint walks each function
 * body as a statement stream (built on the shared tools/common/lexer.h
 * tokenizer — deliberately no compiler frontend, same philosophy as
 * its siblings), marks taint sources, propagates through assignments
 * and arithmetic, and flags tainted values reaching memory sinks
 * without passing a sanitizer.
 *
 * Sources
 *   - results of BitReader-style member calls: readBits, peekBits,
 *     readBytes, readU16le, readU32le, peek, popByte, decode
 *   - loads from (and values of) parameters annotated NXSIM_UNTRUSTED
 *     (src/util/taint.h)
 *
 * Sinks (one rule each)
 *   - taint-copy-size   memcpy/memmove/memset/copyBytes size argument
 *   - taint-alloc-size  resize/reserve/assign first arg, 3-arg insert
 *                       count arg
 *   - taint-index       array/container subscript
 *   - taint-shift       shift amount (RHS of << or >>)
 *   - taint-loop-bound  for/while condition comparing against a
 *                       tainted bound
 *
 * Sanitizers (clear the taint from then on in the function)
 *   - a comparison against the value in an if condition, switch head,
 *     or NXSIM_EXPECT/NXSIM_ENSURE/NXSIM_ASSERT contract
 *   - wrapping in nx::checked_cast / nx::truncate_cast / std::min /
 *     std::clamp
 *   - bit-masking (& constant) or modulo (% constant) with a literal
 *     or kConstant
 *   - an explicit suppression where the finding fires:
 *         // nxtaint: allow(rule-id): why this flow is bounded
 *     (same grammar and placement rules as nxlint; a bare or unused
 *     allow is itself a finding: bare-allow / stale-allow)
 *
 * The analysis is intra-procedural and flow-approximate: a sanitizer
 * anywhere earlier in the function body (in statement order) counts as
 * dominating. That trades soundness corner cases for zero false
 * positives on this codebase's idiom — decode loops check before they
 * write, and the checker's job is to keep it that way.
 */

#ifndef NXSIM_NXTAINT_NXTAINT_H
#define NXSIM_NXTAINT_NXTAINT_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"

namespace nxtaint {

/** One diagnostic (the shared analyzer-family shape). */
using Finding = nxcommon::Finding;

/** Rule metadata for --list-rules and the docs. */
using RuleInfo = nxcommon::RuleInfo;

/** All rules, in the order they are checked. */
const std::vector<RuleInfo> &rules();

/** Analyze one file given as an in-memory buffer. */
std::vector<Finding> analyzeFile(std::string_view path,
                                 std::string_view content);

/**
 * Walk @p root's src/ tree (or @p root itself when it is a bare
 * directory of sources) and analyze every *.h / *.cc file. Unreadable
 * files produce an "io-error" finding.
 */
std::vector<Finding> analyzeTree(const std::string &root);

/** Render a finding as `file:line: rule-id: message`. */
std::string format(const Finding &f);

} // namespace nxtaint

#endif // NXSIM_NXTAINT_NXTAINT_H
