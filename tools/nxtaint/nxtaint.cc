/**
 * @file
 * nxtaint implementation: a statement-level forward taint walk over
 * the shared tokenizer's output.
 *
 * The shape of the analysis, front to back:
 *
 *   1. Lex (tools/common/lexer.h), collect `nxtaint: allow(...)`
 *      suppressions from the comment stream (tools/common/allow.h),
 *      then strip comments and merge multi-character operators (`<<`,
 *      `->`, `==`, ...) via tools/common/tokens.h.
 *   2. Find function bodies: a `{` whose backward token context
 *      resolves (through trailing `const`/`noexcept`/return types /
 *      constructor-initializer lists) to a `)`. Each body gets a fresh
 *      taint environment; lambdas and nested blocks are analyzed
 *      inline against the enclosing function's environment.
 *   3. Walk the body statement by statement in token order. Sources
 *      taint variables, `if`/`switch`/contract comparisons sanitize
 *      them, sinks fire findings on tainted-and-unsanitized values.
 *      "Earlier in statement order" approximates "dominating" — right
 *      for the decode-loop idiom this tree is written in, and every
 *      deliberate exception carries an allow() with a justification.
 *
 * The statement walk stays intra-procedural; cross-function flow rides
 * on the shared call graph (tools/common/callgraph.h). analyzeFiles()
 * computes one TaintSummary per function in bottom-up SCC order — the
 * same Analyzer runs in summary mode with every parameter seeded
 * tainted, and whatever reaches a sink or a `return` is recorded as a
 * per-param flow instead of a finding. The findings pass then consults
 * those summaries at every resolved call site:
 *
 *   - an argument flowing into a parameter whose summary reaches a
 *     sink unchecked is a finding at the call site, with the call
 *     chain printed (`readHdr -> copyBody -> memcpy`);
 *   - a call whose summary returns taint (its own sources reach
 *     `return`, or a tainted argument flows through to the result)
 *     taints the enclosing expression;
 *   - a resolved call whose summary does neither is *clean*, which
 *     removes the old "unknown call is conservatively tainted"
 *     behavior for in-tree callees — unresolved externals keep it.
 *
 * See nxtaint.h for the rule table.
 */

#include "nxtaint/nxtaint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "common/allow.h"
#include "common/callgraph.h"
#include "common/fileset.h"
#include "common/lexer.h"
#include "common/tokens.h"

namespace nxtaint {

namespace {

using nxcommon::Allow;
using nxlex::Lexer;
using nxlex::Tok;
using nxlex::Token;
using nxlex::trim;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"taint-copy-size",
     "memcpy/memmove/memset/copyBytes size argument derives from "
     "untrusted input without a bounds check"},
    {"taint-alloc-size",
     "resize/reserve/assign/insert count derives from untrusted input "
     "without a bounds check"},
    {"taint-index",
     "array/container subscript derives from untrusted input without a "
     "bounds check"},
    {"taint-shift",
     "shift amount derives from untrusted input without a bounds check"},
    {"taint-loop-bound",
     "loop bound derives from untrusted input without a prior bounds "
     "check"},
    {"bare-allow",
     "allow() without a justification, or naming an unknown rule"},
    {"stale-allow",
     "allow() that no longer suppresses any finding"},
    {"io-error", "file could not be read"},
};

using nxcommon::isIdent;
using nxcommon::isPunct;

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/** Why a value is tainted: the original source line and description.
 * In summary mode @p param records which parameter the taint came from
 * (-1 = one of the function's own sources). */
struct TaintInfo
{
    int line = 0;
    std::string what;
    int param = -1;
};

/** One way a parameter reaches a sink inside (or below) a function:
 * the rule that fires and the call chain down to the sink. */
struct SinkFlow
{
    std::string rule;
    std::string chain;    ///< "readHdr -> copyBody -> memcpy"
};

/** Per-function taint summary, computed bottom-up over the call
 * graph's SCCs. Monotone: flows are only ever added, so the SCC
 * fixpoint converges. */
struct TaintSummary
{
    std::vector<std::vector<SinkFlow>> paramSinks;   ///< per parameter
    std::vector<bool> paramToReturn;   ///< arg taint flows to result
    bool returnsTaint = false;         ///< own sources reach return
};

/** Chains longer than this stop growing (recursive SCCs would
 * otherwise append forever; anything deeper is noise anyway). */
constexpr int kMaxChainHops = 6;

/** Member calls whose result is attacker-controlled. */
const std::set<std::string, std::less<>> kSourceMethods = {
    "readBits", "peekBits", "readBytes", "readU16le",
    "readU32le", "peek",     "popByte",  "decode"};

/** Member calls on a tainted object whose result is NOT tainted —
 * these report the container's own geometry, which is exactly what
 * tainted values get sanitized against. */
const std::set<std::string, std::less<>> kCleanMethods = {
    "size", "empty",  "capacity", "data",   "begin",
    "end",  "cbegin", "cend",     "length", "max_size"};

/** Wrappers whose result is bounded regardless of the argument. */
const std::set<std::string, std::less<>> kSanitizerFns = {
    "checked_cast", "truncate_cast", "min", "clamp"};

const std::set<std::string, std::less<>> kContractMacros = {
    "NXSIM_EXPECT", "NXSIM_ENSURE", "NXSIM_ASSERT"};

const std::set<std::string, std::less<>> kCompoundAssign = {
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};

const std::set<std::string, std::less<>> kComparisons = {"<",  ">", "<=",
                                                         ">=", "==", "!="};

/** An identifier spelled like a compile-time constant (kFoo). */
bool
isConstIdent(const std::string &s)
{
    return s.size() >= 2 && s[0] == 'k' &&
           std::isupper(static_cast<unsigned char>(s[1]));
}

class Analyzer
{
  public:
    Analyzer(std::string_view file, const std::vector<Token> &toks,
             std::vector<Finding> &out)
        : file_(file), t_(toks), out_(out)
    {
    }

    /** Enable cross-function mode: call sites of file @p fileIdx are
     * resolved through @p graph and checked against @p sums. */
    void
    setGraph(const nxcommon::CallGraph *graph, size_t fileIdx,
             const std::vector<TaintSummary> *sums)
    {
        graph_ = graph;
        fileIdx_ = fileIdx;
        sums_ = sums;
    }

    /**
     * Summary mode: walk @p fn's body with every parameter seeded
     * tainted, recording param-to-sink flows and return taint into
     * @p sum instead of findings. Returns true when @p sum grew —
     * the change signal for the SCC fixpoint.
     */
    bool
    computeSummary(const nxcommon::FunctionDef &fn, TaintSummary &sum)
    {
        summaryMode_ = true;
        sum_ = &sum;
        sumChanged_ = false;
        fnName_ = fn.name;
        if (sum.paramSinks.size() != fn.params.size()) {
            sum.paramSinks.resize(fn.params.size());
            sum.paramToReturn.resize(fn.params.size(), false);
        }
        beginFunction(fn.paramOpen, fn.paramClose);
        for (size_t p = 0; p < fn.params.size(); ++p)
            if (!fn.params[p].empty())
                env_[fn.params[p]] = {fn.line,
                                      "parameter '" + fn.params[p] + "'",
                                      static_cast<int>(p)};
        analyzeBody(fn.bodyBegin);
        summaryMode_ = false;
        sum_ = nullptr;
        return sumChanged_;
    }

    void
    run()
    {
        size_t n = t_.size();
        size_t i = 0;
        while (i < n) {
            if (isPunct(t_, i, "{")) {
                size_t po = 0;
                size_t pc = 0;
                if (startsFunctionBody(i, po, pc)) {
                    beginFunction(po, pc);
                    i = analyzeBody(i);
                    continue;
                }
            }
            ++i;
        }
    }

  private:
    // -- bracket matching ---------------------------------------------------

    size_t
    matchForward(size_t i, char open, char close) const
    {
        return nxcommon::matchForward(t_, i, open, close);
    }

    size_t
    matchBackward(size_t i, char open, char close) const
    {
        return nxcommon::matchBackward(t_, i, open, close);
    }

    // -- function detection -------------------------------------------------

    /**
     * Does the `{` at @p braceIdx open a function body? Scan backwards
     * over trailing specifiers / return types / initializer lists; a
     * body is preceded (eventually) by the `)` of a parameter list. On
     * success @p po / @p pc are the parameter-list parens.
     */
    bool
    startsFunctionBody(size_t braceIdx, size_t &po, size_t &pc) const
    {
        if (braceIdx == 0)
            return false;
        size_t i = braceIdx - 1;
        // Skip trailing const/noexcept/override/final and `-> Type`.
        for (int guard = 0; guard < 64; ++guard) {
            const Token &tk = t_[i];
            if (tk.kind == Tok::Ident || isPunct(t_, i, "::") ||
                isPunct(t_, i, "<") || isPunct(t_, i, ">") ||
                isPunct(t_, i, "*") || isPunct(t_, i, "&") ||
                isPunct(t_, i, "->")) {
                if (i == 0)
                    return false;
                --i;
                continue;
            }
            break;
        }
        // Constructor initializer lists: `) : a_(x), b_(y) {`. Walk
        // backwards over `name(...)` / `name{...}` entries joined by
        // `,` until the `:` after the parameter list.
        for (int guard = 0; guard < 256; ++guard) {
            if (isPunct(t_, i, ")") || isPunct(t_, i, "}")) {
                char open = t_[i].text[0] == ')' ? '(' : '{';
                size_t openIdx =
                    matchBackward(i, open, t_[i].text[0]);
                if (openIdx == t_.size() || openIdx == 0)
                    return false;
                size_t before = openIdx - 1;
                if (t_[before].kind == Tok::Ident && before > 0 &&
                    (isPunct(t_, before - 1, ",") ||
                     isPunct(t_, before - 1, ":"))) {
                    // initializer-list entry; keep walking left
                    bool colon = isPunct(t_, before - 1, ":");
                    i = before - 2;
                    if (colon) {
                        // token before `:` must be the param-list `)`
                        if (!isPunct(t_, i, ")"))
                            return false;
                        pc = i;
                        po = matchBackward(i, '(', ')');
                        return po != t_.size();
                    }
                    continue;
                }
                if (t_[i].text[0] != ')')
                    return false;
                pc = i;
                po = openIdx;
                return headAllowsFunction(po);
            }
            return false;
        }
        return false;
    }

    /** Reject control-flow heads (`if (...) {`) — they are statements,
     * not function definitions, and only appear inside bodies anyway. */
    bool
    headAllowsFunction(size_t parenOpen) const
    {
        if (parenOpen == 0)
            return false;
        const Token &h = t_[parenOpen - 1];
        if (h.kind != Tok::Ident)
            // `](...)` lambda at namespace scope, `)(...)` fn-ptr, ...
            return isPunct(t_, parenOpen - 1, "]");
        return h.text != "if" && h.text != "for" && h.text != "while" &&
               h.text != "switch" && h.text != "catch" &&
               h.text != "return";
    }

    /** Reset state and mark NXSIM_UNTRUSTED parameters tainted. */
    void
    beginFunction(size_t po, size_t pc)
    {
        env_.clear();
        clean_.clear();
        size_t b = po + 1;
        while (b < pc) {
            size_t e = b;
            int depth = 0;
            for (; e < pc; ++e) {
                if (isPunct(t_, e, "(") || isPunct(t_, e, "[") ||
                    isPunct(t_, e, "{"))
                    ++depth;
                else if (isPunct(t_, e, ")") || isPunct(t_, e, "]") ||
                         isPunct(t_, e, "}"))
                    --depth;
                else if (depth == 0 && isPunct(t_, e, ","))
                    break;
            }
            markUntrustedParam(b, e);
            b = e + 1;
        }
    }

    void
    markUntrustedParam(size_t b, size_t e)
    {
        bool untrusted = false;
        size_t lastIdent = t_.size();
        for (size_t i = b; i < e; ++i) {
            if (isPunct(t_, i, "="))
                break;    // default argument
            if (!isIdent(t_, i))
                continue;
            if (t_[i].text == "NXSIM_UNTRUSTED") {
                untrusted = true;
                continue;
            }
            lastIdent = i;
        }
        if (untrusted && lastIdent != t_.size())
            env_[t_[lastIdent].text] = {t_[lastIdent].line,
                                        "NXSIM_UNTRUSTED parameter '" +
                                            t_[lastIdent].text + "'"};
    }

    // -- body walk ----------------------------------------------------------

    /** Walk one function body; returns the index past its `}`. */
    size_t
    analyzeBody(size_t braceIdx)
    {
        size_t end = matchForward(braceIdx, '{', '}');
        size_t i = braceIdx + 1;
        size_t sb = i;
        while (i < end) {
            const Token &tk = t_[i];
            if (tk.kind == Tok::Ident &&
                (tk.text == "if" || tk.text == "while" ||
                 tk.text == "switch" || tk.text == "for") &&
                isPunct(t_, i + 1, "(")) {
                processStmt(sb, i);
                size_t close = matchForward(i + 1, '(', ')');
                handleControl(tk.text, i + 2, close);
                i = close + 1;
                sb = i;
                continue;
            }
            if (isPunct(t_, i, ";") || isPunct(t_, i, "{") ||
                isPunct(t_, i, "}")) {
                processStmt(sb, i);
                ++i;
                sb = i;
                continue;
            }
            ++i;
        }
        processStmt(sb, end);
        return end + 1;
    }

    /** `for` headers split into init/cond/update; conditions of loops
     * are loop-bound sinks before they sanitize, `if`/`switch`
     * conditions sanitize without flagging. */
    void
    handleControl(const std::string &kind, size_t b, size_t e)
    {
        if (kind == "for") {
            size_t s1 = e;
            size_t s2 = e;
            int depth = 0;
            for (size_t i = b; i < e; ++i) {
                if (isPunct(t_, i, "(") || isPunct(t_, i, "[") ||
                    isPunct(t_, i, "{"))
                    ++depth;
                else if (isPunct(t_, i, ")") || isPunct(t_, i, "]") ||
                         isPunct(t_, i, "}"))
                    --depth;
                else if (depth == 0 && isPunct(t_, i, ";")) {
                    if (s1 == e)
                        s1 = i;
                    else if (s2 == e) {
                        s2 = i;
                        break;
                    }
                }
            }
            if (s1 == e) {
                processStmt(b, e);    // range-for: no condition clause
                return;
            }
            processStmt(b, s1);
            handleCond(s1 + 1, s2 == e ? e : s2, /*loop=*/true,
                       /*isSwitch=*/false);
            if (s2 != e)
                processStmt(s2 + 1, e);
            return;
        }
        handleCond(b, e, /*loop=*/kind == "while",
                   /*isSwitch=*/kind == "switch");
    }

    void
    handleCond(size_t b, size_t e, bool loop, bool isSwitch)
    {
        checkSinks(b, e);
        if (isSwitch) {
            sanitizeIdents(b, e);
            return;
        }
        bool any = false;
        for (size_t i = b; i < e; ++i) {
            if (t_[i].kind != Tok::Punct ||
                kComparisons.count(t_[i].text) == 0)
                continue;
            any = true;
            size_t lb = operandLeft(i, b);
            size_t rb = operandRight(i, e);
            if (loop) {
                TaintInfo ti;
                if (findTaint(lb, i, ti) || findTaint(i + 1, rb, ti))
                    report("taint-loop-bound", t_[i].line,
                           "loop bound compares against " + ti.what +
                               " (tainted at line " +
                               std::to_string(ti.line) +
                               ") before any bounds check",
                           ti, "loop-bound");
            }
            sanitizeIdents(lb, i);
            sanitizeIdents(i + 1, rb);
        }
        (void)any;
    }

    /** Left edge of the operand of the comparison at @p op. */
    size_t
    operandLeft(size_t op, size_t b) const
    {
        size_t i = op;
        while (i > b) {
            size_t p = i - 1;
            if (isPunct(t_, p, ")") || isPunct(t_, p, "]")) {
                char open = t_[p].text[0] == ')' ? '(' : '[';
                size_t o = matchBackward(p, open, t_[p].text[0]);
                if (o == t_.size() || o < b)
                    return i;
                i = o;
                continue;
            }
            if (t_[p].kind == Tok::Punct) {
                const std::string &s = t_[p].text;
                if (s == "(" || s == "," || s == ";" || s == "&&" ||
                    s == "||" || s == "!" || s == "?" || s == ":" ||
                    s == "=" || kComparisons.count(s) != 0)
                    return i;
            }
            i = p;
        }
        return i;
    }

    /** One past the right edge of the operand of the comparison. */
    size_t
    operandRight(size_t op, size_t e) const
    {
        size_t i = op + 1;
        while (i < e) {
            if (isPunct(t_, i, "(") || isPunct(t_, i, "[")) {
                char close = t_[i].text[0] == '(' ? ')' : ']';
                size_t c = matchForward(i, t_[i].text[0], close);
                if (c >= e)
                    return e;
                i = c + 1;
                continue;
            }
            if (t_[i].kind == Tok::Punct) {
                const std::string &s = t_[i].text;
                if (s == ")" || s == "," || s == ";" || s == "&&" ||
                    s == "||" || s == "?" || s == ":" ||
                    kComparisons.count(s) != 0)
                    return i;
            }
            ++i;
        }
        return e;
    }

    /**
     * Mark compared identifiers clean. An identifier inside a
     * subscript group is excluded (the subscript is its own sink, not
     * a check of its index), as is the object/method of a member call
     * (`member.size()` sanitizes nothing about `member` — its contents
     * stay attacker-controlled).
     */
    void
    sanitizeIdents(size_t b, size_t e)
    {
        int sub = 0;
        for (size_t i = b; i < e; ++i) {
            if (isPunct(t_, i, "["))
                ++sub;
            else if (isPunct(t_, i, "]") && sub > 0)
                --sub;
            if (sub > 0 || !isIdent(t_, i))
                continue;
            if (isPunct(t_, i + 1, ".") || isPunct(t_, i + 1, "->") ||
                isPunct(t_, i + 1, "(") || isPunct(t_, i + 1, "::"))
                continue;
            clean_.insert(t_[i].text);
        }
    }

    // -- statements ---------------------------------------------------------

    void
    processStmt(size_t b, size_t e)
    {
        if (b >= e)
            return;
        if (t_[b].kind == Tok::Ident &&
            kContractMacros.count(t_[b].text) != 0 &&
            isPunct(t_, b + 1, "(")) {
            size_t close = matchForward(b + 1, '(', ')');
            // A contract *is* the bounds check: sanitize, don't sink.
            handleCond(b + 2, std::min(close, e), /*loop=*/false,
                       /*isSwitch=*/false);
            return;
        }
        checkSinks(b, e);
        applyAssignment(b, e);
        if (summaryMode_ && (isIdent(t_, b, "return") ||
                             isIdent(t_, b, "co_return"))) {
            TaintInfo ti;
            if (findTaint(b + 1, e, ti))
                recordReturn(ti);
        }
    }

    /** Summary mode: a tainted value reached `return`. */
    void
    recordReturn(const TaintInfo &ti)
    {
        if (ti.param >= 0) {
            size_t p = static_cast<size_t>(ti.param);
            if (p < sum_->paramToReturn.size() &&
                !sum_->paramToReturn[p]) {
                sum_->paramToReturn[p] = true;
                sumChanged_ = true;
            }
        } else if (!sum_->returnsTaint) {
            sum_->returnsTaint = true;
            sumChanged_ = true;
        }
    }

    void
    applyAssignment(size_t b, size_t e)
    {
        int depth = 0;
        for (size_t i = b; i < e; ++i) {
            if (isPunct(t_, i, "(") || isPunct(t_, i, "[") ||
                isPunct(t_, i, "{"))
                ++depth;
            else if (isPunct(t_, i, ")") || isPunct(t_, i, "]") ||
                     isPunct(t_, i, "}"))
                --depth;
            if (depth != 0 || t_[i].kind != Tok::Punct)
                continue;
            bool plain = t_[i].text == "=";
            bool compound = kCompoundAssign.count(t_[i].text) != 0;
            if (!plain && !compound)
                continue;
            if (i == b || !isIdent(t_, i - 1))
                return;    // subscript/deref target: not a tracked var
            const std::string &var = t_[i - 1].text;
            TaintInfo ti;
            if (findTaint(i + 1, e, ti)) {
                env_[var] = ti;
                clean_.erase(var);
            } else if (plain) {
                env_.erase(var);
            }
            return;
        }
    }

    // -- taint evaluation ---------------------------------------------------

    /**
     * Is any value in [b, e) tainted and unsanitized? Regions inside
     * checked_cast/truncate_cast/std::min/std::clamp are skipped; a
     * top-level mask (`& literal`, `% literal-or-kConst`) bounds the
     * whole expression.
     */
    bool
    findTaint(size_t b, size_t e, TaintInfo &out) const
    {
        if (maskedAt(b, e))
            return false;
        size_t i = b;
        while (i < e) {
            if (!isIdent(t_, i)) {
                ++i;
                continue;
            }
            const std::string &name = t_[i].text;
            // Sanitizer wrapper: skip `fn<...>(...)` entirely.
            if (kSanitizerFns.count(name) != 0) {
                size_t j = i + 1;
                if (isPunct(t_, j, "<")) {
                    int ad = 0;
                    for (; j < e; ++j) {
                        if (isPunct(t_, j, "<"))
                            ++ad;
                        else if (isPunct(t_, j, ">") && --ad == 0) {
                            ++j;
                            break;
                        } else if (isPunct(t_, j, ">>"))
                            ad -= 2;
                    }
                }
                if (isPunct(t_, j, "(")) {
                    i = matchForward(j, '(', ')') + 1;
                    continue;
                }
            }
            // Source method call: obj.readBits(...) etc.
            if ((isPunct(t_, i + 1, ".") || isPunct(t_, i + 1, "->")) &&
                isIdent(t_, i + 2) && isPunct(t_, i + 3, "(")) {
                const std::string &m = t_[i + 2].text;
                if (kSourceMethods.count(m) != 0) {
                    out = {t_[i + 2].line, m + "() result"};
                    return true;
                }
            }
            // Resolved call with a summary: the result is tainted when
            // the callee's own sources reach its return, or when a
            // tainted argument flows through to the result. Otherwise
            // the call is clean and the whole expression is skipped —
            // only *unresolved* callees stay conservatively tainted.
            if (sums_ != nullptr && isPunct(t_, i + 1, "(")) {
                const nxcommon::CallSite *cs =
                    graph_->callAt(fileIdx_, i);
                if (cs != nullptr && cs->target >= 0) {
                    const TaintSummary &S =
                        (*sums_)[static_cast<size_t>(cs->target)];
                    if (S.returnsTaint) {
                        out = {t_[i].line,
                               name + "() result (returns untrusted "
                                      "data)"};
                        return true;
                    }
                    for (size_t a = 0;
                         a < cs->args.size() &&
                         a < S.paramToReturn.size();
                         ++a) {
                        if (!S.paramToReturn[a])
                            continue;
                        if (findTaint(cs->args[a].first,
                                      std::min(cs->args[a].second, e),
                                      out))
                            return true;
                    }
                    i = matchForward(i + 1, '(', ')') + 1;
                    continue;
                }
            }
            auto it = env_.find(name);
            if (it != env_.end() && clean_.count(name) == 0) {
                // Walk the member chain: geometry queries on a tainted
                // container (x.size(), a.b.begin(), ...) are clean —
                // they report capacity, the very thing tainted values
                // get sanitized against. Any other use is tainted.
                size_t j = i;
                bool cleanCall = false;
                while ((isPunct(t_, j + 1, ".") ||
                        isPunct(t_, j + 1, "->")) &&
                       isIdent(t_, j + 2)) {
                    if (isPunct(t_, j + 3, "(")) {
                        cleanCall =
                            kCleanMethods.count(t_[j + 2].text) != 0;
                        if (cleanCall)
                            i = matchForward(j + 3, '(', ')') + 1;
                        break;
                    }
                    j += 2;
                }
                if (cleanCall)
                    continue;
                out = it->second;
                if (out.what.find('\'') == std::string::npos)
                    out = {it->second.line, "'" + name + "'"};
                return true;
            }
            ++i;
        }
        return false;
    }

    /** Does [b, e) contain a top-level constant mask or modulo? */
    bool
    maskedAt(size_t b, size_t e) const
    {
        int depth = 0;
        for (size_t i = b; i < e; ++i) {
            if (isPunct(t_, i, "(") || isPunct(t_, i, "[") ||
                isPunct(t_, i, "{"))
                ++depth;
            else if (isPunct(t_, i, ")") || isPunct(t_, i, "]") ||
                     isPunct(t_, i, "}"))
                --depth;
            if (depth != 0)
                continue;
            if (!isPunct(t_, i, "&") && !isPunct(t_, i, "%"))
                continue;
            size_t j = i + 1;
            if (j >= e)
                continue;
            if (t_[j].kind == Tok::Number)
                return true;
            if (isIdent(t_, j) && isConstIdent(t_[j].text) &&
                !isPunct(t_, j + 1, "("))
                return true;
            if (isPunct(t_, j, "(")) {
                size_t c = matchForward(j, '(', ')');
                bool constGroup = c > j + 1 && c <= e;
                for (size_t k = j + 1; k < c && constGroup; ++k) {
                    if (t_[k].kind == Tok::Number ||
                        t_[k].kind == Tok::Punct)
                        continue;
                    if (isIdent(t_, k) && isConstIdent(t_[k].text))
                        continue;
                    constGroup = false;
                }
                if (constGroup)
                    return true;
            }
        }
        return false;
    }

    // -- sinks --------------------------------------------------------------

    void
    checkSinks(size_t b, size_t e)
    {
        checkCallSinks(b, e);
        checkIndexSinks(b, e);
        checkShiftSinks(b, e);
    }

    void
    checkCallSinks(size_t b, size_t e)
    {
        for (size_t i = b; i < e; ++i) {
            if (!isIdent(t_, i) || !isPunct(t_, i + 1, "("))
                continue;
            const std::string &name = t_[i].text;
            size_t close = matchForward(i + 1, '(', ')');
            if (close > e)
                continue;
            std::vector<std::pair<size_t, size_t>> args;
            splitArgs(i + 2, close, args);
            bool member = i > b && (isPunct(t_, i - 1, ".") ||
                                    isPunct(t_, i - 1, "->"));
            size_t argIdx = t_.size();
            const char *rule = nullptr;
            if (name == "memcpy" || name == "memmove" ||
                name == "memset" || name == "copyBytes") {
                if (!args.empty()) {
                    argIdx = args.size() - 1;
                    rule = "taint-copy-size";
                }
            } else if (member &&
                       (name == "resize" || name == "reserve" ||
                        (name == "assign" && args.size() == 2))) {
                if (!args.empty()) {
                    argIdx = 0;
                    rule = "taint-alloc-size";
                }
            } else if (member && name == "insert" && args.size() == 3) {
                argIdx = 1;
                rule = "taint-alloc-size";
            }
            if (rule != nullptr && argIdx < args.size()) {
                TaintInfo ti;
                if (findTaint(args[argIdx].first, args[argIdx].second,
                              ti))
                    report(rule, t_[i].line,
                           name + "() count argument derives from " +
                               ti.what + " (tainted at line " +
                               std::to_string(ti.line) +
                               ") without a bounds check",
                           ti, name);
                continue;
            }
            checkSummarySinks(i, name, args);
        }
    }

    /**
     * Cross-function sink: the call resolves to a function whose
     * summary says parameter N reaches a sink unchecked — a tainted
     * argument in position N is a finding at this call site, with the
     * call chain printed.
     */
    void
    checkSummarySinks(size_t i, const std::string &name,
                      const std::vector<std::pair<size_t, size_t>> &args)
    {
        if (sums_ == nullptr)
            return;
        const nxcommon::CallSite *cs = graph_->callAt(fileIdx_, i);
        if (cs == nullptr || cs->target < 0)
            return;
        const TaintSummary &S = (*sums_)[static_cast<size_t>(cs->target)];
        for (size_t a = 0; a < args.size() && a < S.paramSinks.size();
             ++a) {
            if (S.paramSinks[a].empty())
                continue;
            TaintInfo ti;
            if (!findTaint(args[a].first, args[a].second, ti))
                continue;
            const SinkFlow &fl = S.paramSinks[a][0];
            report(fl.rule, t_[i].line,
                   "argument " + std::to_string(a + 1) + " of " + name +
                       "() derives from " + ti.what +
                       " (tainted at line " + std::to_string(ti.line) +
                       ") and reaches an unchecked sink (call chain: " +
                       fl.chain + ")",
                   ti, fl.chain);
        }
    }

    void
    splitArgs(size_t b, size_t e,
              std::vector<std::pair<size_t, size_t>> &args) const
    {
        nxcommon::splitArgs(t_, b, e, args);
    }

    void
    checkIndexSinks(size_t b, size_t e)
    {
        for (size_t i = b; i < e; ++i) {
            if (!isPunct(t_, i, "["))
                continue;
            if (i == b || !(isIdent(t_, i - 1) || isPunct(t_, i - 1, "]") ||
                            isPunct(t_, i - 1, ")")))
                continue;    // lambda introducer / attribute, not a load
            size_t close = matchForward(i, '[', ']');
            if (close > e)
                continue;
            TaintInfo ti;
            if (findTaint(i + 1, close, ti))
                report("taint-index", t_[i].line,
                       "subscript derives from " + ti.what +
                           " (tainted at line " + std::to_string(ti.line) +
                           ") without a bounds check",
                       ti, "subscript");
        }
    }

    void
    checkShiftSinks(size_t b, size_t e)
    {
        // Stream formatting (`oss << value`) is not bit arithmetic:
        // skip statements that chain a string literal through <<.
        bool hasStr = false;
        bool hasShl = false;
        for (size_t i = b; i < e; ++i) {
            if (t_[i].kind == Tok::Str)
                hasStr = true;
            if (isPunct(t_, i, "<<"))
                hasShl = true;
        }
        if (hasStr && hasShl)
            return;
        for (size_t i = b; i < e; ++i) {
            if (!isPunct(t_, i, "<<") && !isPunct(t_, i, ">>"))
                continue;
            size_t rb = i + 1;
            size_t re = rb;
            if (isPunct(t_, rb, "(")) {
                re = matchForward(rb, '(', ')') + 1;
            } else {
                while (re < e &&
                       (isIdent(t_, re) || t_[re].kind == Tok::Number ||
                        isPunct(t_, re, "::") || isPunct(t_, re, ".") ||
                        isPunct(t_, re, "->")))
                    ++re;
            }
            TaintInfo ti;
            if (findTaint(rb, std::min(re, e), ti))
                report("taint-shift", t_[i].line,
                       "shift amount derives from " + ti.what +
                           " (tainted at line " + std::to_string(ti.line) +
                           ") without a bounds check",
                       ti, "shift");
        }
    }

    /**
     * Emit a finding — or, in summary mode, record the flow: a sink
     * reached from parameter N becomes a SinkFlow on that parameter
     * (chain extended with this function's name); sinks fed by the
     * function's own sources are dropped here because the findings
     * pass reports them directly.
     */
    void
    report(const std::string &rule, int line, const std::string &msg,
           const TaintInfo &ti, const std::string &chainTail)
    {
        if (summaryMode_) {
            if (ti.param < 0 ||
                static_cast<size_t>(ti.param) >= sum_->paramSinks.size())
                return;
            int hops = 1;
            for (size_t p = chainTail.find(" -> ");
                 p != std::string::npos;
                 p = chainTail.find(" -> ", p + 4))
                ++hops;
            if (hops >= kMaxChainHops)
                return;
            std::string chain = fnName_ + " -> " + chainTail;
            auto &flows =
                sum_->paramSinks[static_cast<size_t>(ti.param)];
            for (const SinkFlow &fl : flows)
                if (fl.rule == rule && fl.chain == chain)
                    return;
            flows.push_back({rule, chain});
            sumChanged_ = true;
            return;
        }
        out_.push_back({std::string(file_), line, rule, msg});
    }

    std::string_view file_;
    const std::vector<Token> &t_;
    std::vector<Finding> &out_;
    std::map<std::string, TaintInfo, std::less<>> env_;
    std::set<std::string, std::less<>> clean_;

    // Cross-function mode (setGraph) and summary mode (computeSummary).
    const nxcommon::CallGraph *graph_ = nullptr;
    size_t fileIdx_ = 0;
    const std::vector<TaintSummary> *sums_ = nullptr;
    bool summaryMode_ = false;
    TaintSummary *sum_ = nullptr;
    std::string fnName_;
    bool sumChanged_ = false;
};

} // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

std::vector<Finding>
analyzeFiles(const std::vector<nxcommon::SourceFile> &files)
{
    size_t n = files.size();
    std::vector<std::string> paths;
    std::vector<std::vector<Token>> merged;
    std::vector<std::vector<Allow>> allows(n);
    std::vector<std::vector<Finding>> pre(n);
    paths.reserve(n);
    merged.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::vector<Token> raw = Lexer(files[i].content).run();
        allows[i] = nxcommon::collectAllows(raw, "nxtaint", kRules,
                                            pre[i], files[i].path);
        merged.push_back(nxcommon::mergeOperators(raw));
        paths.push_back(files[i].path);
    }

    const nxcommon::CallGraph graph =
        nxcommon::CallGraph::build(std::move(paths), std::move(merged));

    // Summaries, callees before callers; SCCs iterate to a fixpoint.
    std::vector<TaintSummary> sums(graph.functions().size());
    std::vector<Finding> scratch;
    graph.forEachBottomUp([&](int id) {
        const nxcommon::FunctionDef &fn =
            graph.functions()[static_cast<size_t>(id)];
        Analyzer a(graph.paths()[fn.fileIdx], graph.tokens(fn.fileIdx),
                   scratch);
        a.setGraph(&graph, fn.fileIdx, &sums);
        return a.computeSummary(fn, sums[static_cast<size_t>(id)]);
    });

    // Findings pass, summaries in hand.
    std::vector<Finding> findings;
    for (size_t i = 0; i < n; ++i) {
        std::vector<Finding> fileFindings = std::move(pre[i]);
        std::vector<Finding> rawFindings;
        Analyzer a(files[i].path, graph.tokens(i), rawFindings);
        a.setGraph(&graph, i, &sums);
        a.run();
        nxcommon::applyAllows(std::move(rawFindings), allows[i],
                              files[i].path, fileFindings);
        std::sort(fileFindings.begin(), fileFindings.end(),
                  [](const Finding &a2, const Finding &b2) {
                      return a2.line != b2.line ? a2.line < b2.line
                                                : a2.rule < b2.rule;
                  });
        for (Finding &fd : fileFindings)
            findings.push_back(std::move(fd));
    }
    return findings;
}

std::vector<Finding>
analyzeFile(std::string_view path, std::string_view content)
{
    return analyzeFiles(
        {{std::string(path), std::string(content)}});
}

std::vector<Finding>
analyzeTree(const std::string &root)
{
    nxcommon::TreeLoad tree = nxcommon::loadTree(root, {"src"});
    std::vector<Finding> findings = std::move(tree.ioErrors);
    for (Finding &fd : analyzeFiles(tree.files))
        findings.push_back(std::move(fd));
    return findings;
}

std::string
format(const Finding &f)
{
    return nxcommon::formatText(f);
}

} // namespace nxtaint
