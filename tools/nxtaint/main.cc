/**
 * @file
 * nxtaint CLI.
 *
 * Usage:
 *   nxtaint [--list-rules] [<repo-root> | <file>...]
 *
 * With a directory argument (default: the current directory) the tool
 * analyzes every *.h / *.cc under its src/ subtree — the trees where
 * untrusted compressed input flows. Explicit file arguments are
 * analyzed one by one (how the fixture tests drive it). Exit status:
 * 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nxtaint/nxtaint.h"

namespace {

int
listRules()
{
    for (const nxtaint::RuleInfo &r : nxtaint::rules())
        std::printf("%-24s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
    return 0;
}

bool
analyzeOneFile(const std::string &path, std::vector<nxtaint::Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "nxtaint: cannot read %s\n", path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string content = ss.str();
    for (nxtaint::Finding &f : nxtaint::analyzeFile(path, content))
        out.push_back(std::move(f));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules")
            return listRules();
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: nxtaint [--list-rules] [<repo-root> | <file>...]\n");
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "nxtaint: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
        args.push_back(arg);
    }
    if (args.empty())
        args.push_back(".");

    std::vector<nxtaint::Finding> findings;
    bool ioOk = true;
    for (const std::string &arg : args) {
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            for (nxtaint::Finding &f : nxtaint::analyzeTree(arg))
                findings.push_back(std::move(f));
        } else {
            ioOk = analyzeOneFile(arg, findings) && ioOk;
        }
    }

    for (const nxtaint::Finding &f : findings)
        std::printf("%s\n", nxtaint::format(f).c_str());
    if (!ioOk)
        return 2;
    if (!findings.empty()) {
        std::fprintf(stderr, "nxtaint: %zu finding%s\n", findings.size(),
                     findings.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
