/**
 * @file
 * nxtaint CLI — a thin ToolSpec over the shared analyzer driver
 * (tools/common/driver.h owns argument parsing, --format=json, file
 * lists and the 0/1/2 exit-code convention).
 *
 * Usage:
 *   nxtaint [--list-rules] [--format=text|json] [<repo-root> | <file>...]
 *
 * With a directory argument (default: the current directory) the tool
 * analyzes every *.h / *.cc under its src/ subtree. Explicit file
 * arguments are analyzed one by one.
 */

#include "common/driver.h"
#include "nxtaint/nxtaint.h"

int
main(int argc, char **argv)
{
    nxcommon::ToolSpec spec;
    spec.name = "nxtaint";
    spec.usageArgs = "[<repo-root> | <file>...]";
    spec.rules = &nxtaint::rules();
    spec.analyzeFile = nxtaint::analyzeFile;
    spec.analyzeTree = nxtaint::analyzeTree;
    return nxcommon::runTool(argc, argv, spec);
}
