/**
 * @file
 * nxstate implementation: declarative typestate protocols checked by a
 * small intra-procedural CFG walk, plus a global lock-order graph.
 *
 * The shape of the analysis, front to back:
 *
 *   1. Lex every file (tools/common/lexer.h), collect `nxstate:
 *      allow(...)` suppressions (tools/common/allow.h), and harvest
 *      protocol declarations — NXSIM_PROTOCOL / NXSIM_TICKET_PROTOCOL
 *      macro invocations in the merged token stream and `// nxstate:
 *      protocol(Class: spec)` comments in the raw one. Declarations
 *      are global: a class annotated in its header is enforced in
 *      every translation unit.
 *   2. Find function bodies (a `{` whose backward context resolves to
 *      a parameter list, as in nxtaint) and walk each one statement
 *      by statement. The walker keeps, per protocol-typed local, the
 *      SET of phases the object could be in: if/else branches fork
 *      and re-join the set, loop bodies run twice (second pass seeded
 *      with the first pass's exit state, which is what catches
 *      cross-iteration misuse), early returns terminate their path,
 *      and switch bodies are folded conservatively. A finding fires
 *      only when EVERY possible phase rejects a call.
 *   3. Tickets (NXSIM_TICKET_PROTOCOL) are tracked by simple-path
 *      identity: `auto r = srv.submitAsync(spec)` makes `r.ticket` a
 *      ticket of server `srv`; wait() claims it exactly once, drain()
 *      claims every outstanding ticket of that server, and any
 *      claim/poll after that is a ticket-double-claim.
 *   4. Lock order: every RAII lock acquisition (nx::MutexLock,
 *      std::lock_guard/unique_lock/scoped_lock/shared_lock) pushes a
 *      scope entry; acquiring B while A is held adds the global edge
 *      A -> B. A cycle in the resulting graph is a potential deadlock
 *      (rule lock-cycle); --dot prints the graph.
 *
 * Everything is deliberately token-level — no compiler frontend, same
 * philosophy as nxlint/nxdeps/nxtaint — so soundness corner cases are
 * traded for zero false positives on this codebase's idiom.
 */

#include "nxstate/nxstate.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/allow.h"
#include "common/fileset.h"
#include "common/lexer.h"
#include "common/tokens.h"

namespace nxstate {

namespace {

using nxcommon::Allow;
using nxcommon::isIdent;
using nxcommon::isPunct;
using nxcommon::matchForward;
using nxlex::Lexer;
using nxlex::Tok;
using nxlex::Token;
using nxlex::trim;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"protocol-order",
     "method called before its declared phase is reachable"},
    {"use-after-finish",
     "method called after the final phase consumed the object"},
    {"double-finish", "a once-only final phase entered twice"},
    {"ticket-double-claim",
     "a ticket claimed twice, or claimed/polled after drain() already "
     "claimed it"},
    {"lock-cycle",
     "the global lock-acquisition graph has a cycle (potential "
     "deadlock)"},
    {"protocol-decl", "malformed or conflicting protocol declaration"},
    {"bare-allow",
     "allow() without a justification, or naming an unknown rule"},
    {"stale-allow", "allow() that no longer suppresses any finding"},
    {"io-error", "file could not be read"},
};

// ---------------------------------------------------------------------------
// Protocol tables
// ---------------------------------------------------------------------------

/** One callable step: a method name, optionally distinguished by an
 * argument marker (`write[Finish]` matches a write() whose argument
 * list mentions the identifier Finish). */
struct Atom
{
    std::string method;
    std::string marker;
};

/** One phase: alternatives plus multiplicity ('1' = exactly once). */
struct Phase
{
    std::vector<Atom> atoms;
    char mult = '1';
};

struct Protocol
{
    std::string cls;
    std::vector<Phase> phases;
    std::string pretty;      ///< canonical spec text for messages
    std::string declFile;
    int declLine = 0;
};

/** Ticket lifecycle roles for one issuing class. */
struct TicketProtocol
{
    std::string cls;
    std::set<std::string> issue;   ///< methods returning a ticket
    std::set<std::string> claim;   ///< claim exactly once (wait)
    std::set<std::string> poll;    ///< non-claiming check (poll)
    std::set<std::string> drain;   ///< claims every outstanding ticket
    std::set<std::string> stop;    ///< shutdown (records stay claimable)
    std::string declFile;
    int declLine = 0;
};

struct Tables
{
    std::map<std::string, Protocol> protos;          ///< by class name
    std::map<std::string, TicketProtocol> tprotos;   ///< by class name
};

bool
multAllows(char mult, int used)
{
    return mult == '*' || mult == '+' || used < 1;
}

bool
leavable(char mult, int used)
{
    return mult == '*' || mult == '?' || used >= 1;
}

bool
skippable(const Phase &ph)
{
    return ph.mult == '*' || ph.mult == '?';
}

std::string
phaseText(const Phase &ph)
{
    std::string s;
    if (ph.atoms.size() > 1)
        s += "{";
    for (size_t i = 0; i < ph.atoms.size(); ++i) {
        if (i > 0)
            s += "|";
        s += ph.atoms[i].method;
        if (!ph.atoms[i].marker.empty())
            s += "[" + ph.atoms[i].marker + "]";
    }
    if (ph.atoms.size() > 1)
        s += "}";
    if (ph.mult != '1')
        s += ph.mult;
    return s;
}

std::string
prettySpec(const Protocol &p)
{
    std::string s;
    for (size_t i = 0; i < p.phases.size(); ++i) {
        if (i > 0)
            s += " -> ";
        s += phaseText(p.phases[i]);
    }
    return s;
}

bool
parseAtom(const std::vector<Token> &t, size_t &i, size_t e, Atom &a)
{
    if (i >= e || !isIdent(t, i))
        return false;
    a.method = t[i].text;
    ++i;
    if (i < e && isPunct(t, i, "[")) {
        if (!isIdent(t, i + 1) || !isPunct(t, i + 2, "]"))
            return false;
        a.marker = t[i + 1].text;
        i += 3;
    }
    return true;
}

/** Parse `phase ('->' phase)*` from the merged tokens [b, e). */
bool
parseSpec(const std::vector<Token> &t, size_t b, size_t e, Protocol &p)
{
    size_t i = b;
    while (i < e) {
        Phase ph;
        if (isPunct(t, i, "{")) {
            ++i;
            while (true) {
                Atom a;
                if (!parseAtom(t, i, e, a))
                    return false;
                ph.atoms.push_back(std::move(a));
                if (i < e && isPunct(t, i, "|")) {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= e || !isPunct(t, i, "}"))
                return false;
            ++i;
        } else {
            Atom a;
            if (!parseAtom(t, i, e, a))
                return false;
            ph.atoms.push_back(std::move(a));
        }
        if (i < e && t[i].kind == Tok::Punct &&
            (t[i].text == "*" || t[i].text == "+" || t[i].text == "?")) {
            ph.mult = t[i].text[0];
            ++i;
        }
        p.phases.push_back(std::move(ph));
        if (i >= e)
            break;
        if (!isPunct(t, i, "->"))
            return false;
        ++i;
        if (i >= e)
            return false;   // trailing ->
    }
    return !p.phases.empty();
}

std::string
lastIdentIn(const std::vector<Token> &t, size_t b, size_t e)
{
    std::string s;
    for (size_t i = b; i < e; ++i)
        if (isIdent(t, i))
            s = t[i].text;
    return s;
}

void
registerProtocol(Tables &tb, Protocol &&p, std::vector<Finding> &raw)
{
    auto it = tb.protos.find(p.cls);
    if (it != tb.protos.end()) {
        if (it->second.pretty != p.pretty)
            raw.push_back(
                {p.declFile, p.declLine, "protocol-decl",
                 "conflicting protocol for '" + p.cls +
                     "' (already declared at " + it->second.declFile +
                     ":" + std::to_string(it->second.declLine) + ")"});
        return;
    }
    tb.protos.emplace(p.cls, std::move(p));
}

/** NXSIM_PROTOCOL / NXSIM_TICKET_PROTOCOL invocations (merged stream;
 * the #define in src/util/protocol.h is a Pp token, so only real
 * invocations are visible here). */
void
collectMacroProtocols(const std::vector<Token> &t, std::string_view file,
                      Tables &tb, std::vector<Finding> &raw)
{
    for (size_t i = 0; i < t.size(); ++i) {
        bool plain = isIdent(t, i, "NXSIM_PROTOCOL");
        bool ticket = isIdent(t, i, "NXSIM_TICKET_PROTOCOL");
        if ((!plain && !ticket) || !isPunct(t, i + 1, "("))
            continue;
        int line = t[i].line;
        size_t close = matchForward(t, i + 1, '(', ')');
        if (close >= t.size()) {
            raw.push_back({std::string(file), line, "protocol-decl",
                           "unterminated protocol declaration"});
            continue;
        }
        std::vector<std::pair<size_t, size_t>> parts;
        nxcommon::splitArgs(t, i + 2, close, parts);

        if (plain) {
            if (parts.size() != 2) {
                raw.push_back(
                    {std::string(file), line, "protocol-decl",
                     "NXSIM_PROTOCOL needs exactly (Class, spec)"});
                i = close;
                continue;
            }
            Protocol p;
            p.cls = lastIdentIn(t, parts[0].first, parts[0].second);
            p.declFile = std::string(file);
            p.declLine = line;
            if (p.cls.empty() ||
                !parseSpec(t, parts[1].first, parts[1].second, p)) {
                raw.push_back({std::string(file), line, "protocol-decl",
                               "malformed protocol spec for '" + p.cls +
                                   "'"});
                i = close;
                continue;
            }
            p.pretty = prettySpec(p);
            registerProtocol(tb, std::move(p), raw);
        } else {
            if (parts.size() < 2) {
                raw.push_back({std::string(file), line, "protocol-decl",
                               "NXSIM_TICKET_PROTOCOL needs (Class, "
                               "role(methods)...)"});
                i = close;
                continue;
            }
            TicketProtocol tp;
            tp.cls = lastIdentIn(t, parts[0].first, parts[0].second);
            tp.declFile = std::string(file);
            tp.declLine = line;
            bool ok = !tp.cls.empty();
            for (size_t k = 1; ok && k < parts.size(); ++k) {
                size_t j = parts[k].first;
                if (!isIdent(t, j) || !isPunct(t, j + 1, "(")) {
                    ok = false;
                    break;
                }
                std::string role = t[j].text;
                size_t rc = matchForward(t, j + 1, '(', ')');
                if (rc > parts[k].second) {
                    ok = false;
                    break;
                }
                std::set<std::string> *dst =
                    role == "issue"   ? &tp.issue
                    : role == "claim" ? &tp.claim
                    : role == "poll"  ? &tp.poll
                    : role == "drain" ? &tp.drain
                    : role == "stop"  ? &tp.stop
                                      : nullptr;
                if (dst == nullptr) {
                    ok = false;
                    break;
                }
                for (size_t a = j + 2; a < rc; ++a)
                    if (isIdent(t, a))
                        dst->insert(t[a].text);
            }
            if (!ok) {
                raw.push_back(
                    {std::string(file), line, "protocol-decl",
                     "malformed NXSIM_TICKET_PROTOCOL for '" + tp.cls +
                         "' (roles: issue/claim/poll/drain/stop)"});
                i = close;
                continue;
            }
            auto it = tb.tprotos.find(tp.cls);
            if (it != tb.tprotos.end()) {
                raw.push_back(
                    {std::string(file), line, "protocol-decl",
                     "conflicting ticket protocol for '" + tp.cls +
                         "' (already declared at " + it->second.declFile +
                         ":" + std::to_string(it->second.declLine) + ")"});
            } else {
                tb.tprotos.emplace(tp.cls, std::move(tp));
            }
        }
        i = close;
    }
}

/** `// nxstate: protocol(Class: spec)` comment declarations (raw
 * stream). Anchored exactly like allow(): the line comment itself must
 * start with `nxstate:`, so prose never parses as a declaration. */
void
collectCommentProtocols(const std::vector<Token> &raw, std::string_view file,
                        Tables &tb, std::vector<Finding> &findings)
{
    for (const Token &tk : raw) {
        if (tk.kind != Tok::Comment || tk.text.rfind("//", 0) != 0)
            continue;
        std::string_view body = trim(std::string_view(tk.text).substr(2));
        if (body.rfind("nxstate:", 0) != 0)
            continue;
        body = trim(body.substr(8));
        if (body.rfind("protocol(", 0) != 0)
            continue;
        body.remove_prefix(9);
        size_t rp = body.rfind(')');
        size_t colon = body.find(':');
        if (rp == std::string_view::npos || colon == std::string_view::npos ||
            colon > rp) {
            findings.push_back(
                {std::string(file), tk.line, "protocol-decl",
                 "malformed comment protocol; expected `// nxstate: "
                 "protocol(Class: spec)`"});
            continue;
        }
        Protocol p;
        std::string clsText{trim(body.substr(0, colon))};
        size_t q = clsText.rfind("::");
        p.cls = q == std::string::npos ? clsText : clsText.substr(q + 2);
        p.declFile = std::string(file);
        p.declLine = tk.line;
        std::string spec{body.substr(colon + 1, rp - colon - 1)};
        std::vector<Token> toks =
            nxcommon::mergeOperators(Lexer(spec).run());
        if (p.cls.empty() || !parseSpec(toks, 0, toks.size(), p)) {
            findings.push_back({std::string(file), tk.line,
                                "protocol-decl",
                                "malformed protocol spec for '" + p.cls +
                                    "'"});
            continue;
        }
        p.pretty = prettySpec(p);
        registerProtocol(tb, std::move(p), findings);
    }
}

// ---------------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------------

struct LockEdge
{
    size_t to = 0;
    std::string file;
    int line = 0;
};

struct LockGraph
{
    std::vector<std::string> names;
    std::map<std::string, size_t> idx;
    std::map<std::pair<size_t, size_t>, LockEdge> edges;

    size_t
    intern(const std::string &n)
    {
        auto it = idx.find(n);
        if (it != idx.end())
            return it->second;
        size_t i = names.size();
        idx.emplace(n, i);
        names.push_back(n);
        return i;
    }
};

const std::set<std::string, std::less<>> kLockTypes = {
    "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock"};

const std::set<std::string, std::less<>> kLockTags = {
    "adopt_lock", "defer_lock", "try_to_lock"};

// ---------------------------------------------------------------------------
// The typestate walker
// ---------------------------------------------------------------------------

/** Claim state of one issued ticket (must-semantics across joins). */
struct TicketFlags
{
    bool claimed = false;
    bool drained = false;          ///< drain() claimed it in batch
    std::string server;            ///< receiver path that issued it
    std::string drainedBy;
    int issueLine = 0;
};

/** Everything tracked along one CFG path. */
struct PathState
{
    std::map<std::string, const Protocol *> protoOf;
    /** var -> possible (phase index, uses of that phase); phase -1 is
     * the virtual start state. */
    std::map<std::string, std::set<std::pair<int, int>>> vars;
    std::map<std::string, int> ticketOf;   ///< simple path -> ticket id
    std::vector<TicketFlags> tickets;      ///< by id (ids body-unique)
};

PathState
joinState(const PathState &a, const PathState &b)
{
    PathState j = a;
    for (const auto &kv : b.protoOf)
        j.protoOf.emplace(kv.first, kv.second);
    for (const auto &kv : b.vars) {
        auto &s = j.vars[kv.first];
        s.insert(kv.second.begin(), kv.second.end());
    }
    for (const auto &kv : b.ticketOf)
        j.ticketOf.emplace(kv.first, kv.second);
    if (b.tickets.size() > j.tickets.size())
        j.tickets.resize(b.tickets.size());
    for (size_t i = 0; i < b.tickets.size(); ++i) {
        TicketFlags &f = j.tickets[i];
        const TicketFlags &g = b.tickets[i];
        if (f.server.empty()) {
            f = g;
        } else {
            // Must-semantics: flagged only when true on every path.
            f.claimed = f.claimed && g.claimed;
            f.drained = f.drained && g.drained;
        }
    }
    return j;
}

const std::set<std::string, std::less<>> kStmtKeywords = {
    "if",   "for",     "while",  "do",    "switch", "case",
    "else", "default", "return", "throw", "break",  "continue",
    "goto", "try",     "catch",  "co_return"};

const std::set<std::string, std::less<>> kNotVarName = {
    "operator", "const", "final", "override", "noexcept"};

class BodyCheck
{
  public:
    BodyCheck(std::string_view file, const std::vector<Token> &t,
              const Tables &tb, std::vector<Finding> &out)
        : file_(file), t_(t), tb_(tb), out_(out)
    {
    }

    void
    run(size_t b, size_t e)
    {
        PathState st;
        walk(b, e, st);
    }

  private:
    // -- CFG walk ----------------------------------------------------

    /** Walk [b, e); true when the range unconditionally leaves the
     * enclosing function/loop (return, throw, break, ...). */
    bool
    walk(size_t b, size_t e, PathState &st)
    {
        size_t i = b;
        while (i < e) {
            bool term = false;
            i = step(i, e, st, &term);
            if (term)
                return true;   // rest of the block is dead
        }
        return false;
    }

    /** Process one statement/construct at @p i; returns the index just
     * past it. */
    size_t
    step(size_t i, size_t e, PathState &st, bool *terminated)
    {
        if (isPunct(t_, i, "{")) {
            size_t m = std::min(matchForward(t_, i, '{', '}'), e);
            *terminated = walk(i + 1, m, st);
            return m + 1;
        }
        if (isPunct(t_, i, ";"))
            return i + 1;
        if (isIdent(t_, i, "if")) {
            size_t j = i + 1;
            if (isIdent(t_, j, "constexpr"))
                ++j;
            if (!isPunct(t_, j, "("))
                return i + 1;
            size_t pc = std::min(matchForward(t_, j, '(', ')'), e);
            processRange(j + 1, pc, st);
            PathState thenSt = st;
            bool thenTerm = false;
            size_t k = step(pc + 1, e, thenSt, &thenTerm);
            if (isIdent(t_, k, "else")) {
                PathState elseSt = st;
                bool elseTerm = false;
                size_t k2 = step(k + 1, e, elseSt, &elseTerm);
                if (thenTerm && elseTerm) {
                    st = joinState(thenSt, elseSt);
                    *terminated = true;
                } else if (thenTerm) {
                    st = std::move(elseSt);
                } else if (elseTerm) {
                    st = std::move(thenSt);
                } else {
                    st = joinState(thenSt, elseSt);
                }
                return k2;
            }
            if (!thenTerm)
                st = joinState(st, thenSt);
            return k;
        }
        if (isIdent(t_, i, "for") || isIdent(t_, i, "while")) {
            if (!isPunct(t_, i + 1, "("))
                return i + 1;
            size_t pc = std::min(matchForward(t_, i + 1, '(', ')'), e);
            processRange(i + 2, pc, st);
            PathState once = st;
            bool bt = false;
            size_t k = step(pc + 1, e, once, &bt);
            if (!bt) {
                // Second pass seeded with the first pass's exit state:
                // this is what catches cross-iteration misuse (a
                // finishing call inside the loop body).
                PathState twice = once;
                bool bt2 = false;
                (void)step(pc + 1, e, twice, &bt2);
                once = joinState(once, twice);
            }
            st = joinState(st, once);
            return k;
        }
        if (isIdent(t_, i, "do")) {
            bool bt = false;
            size_t k = step(i + 1, e, st, &bt);
            if (!bt) {
                PathState twice = st;
                bool bt2 = false;
                (void)step(i + 1, e, twice, &bt2);
                st = joinState(st, twice);
            }
            if (isIdent(t_, k, "while") && isPunct(t_, k + 1, "(")) {
                size_t pc = std::min(matchForward(t_, k + 1, '(', ')'), e);
                processRange(k + 2, pc, st);
                k = pc + 1;
                if (isPunct(t_, k, ";"))
                    ++k;
            }
            return k;
        }
        if (isIdent(t_, i, "switch")) {
            if (!isPunct(t_, i + 1, "("))
                return i + 1;
            size_t pc = std::min(matchForward(t_, i + 1, '(', ')'), e);
            processRange(i + 2, pc, st);
            if (isPunct(t_, pc + 1, "{")) {
                size_t m = std::min(matchForward(t_, pc + 1, '{', '}'), e);
                // Conservative: cases folded into one linear walk,
                // joined with the entry state (a case may not run).
                PathState inner = st;
                walk(pc + 2, m, inner);
                st = joinState(st, inner);
                return m + 1;
            }
            return pc + 1;
        }
        if (isIdent(t_, i, "case") || isIdent(t_, i, "default")) {
            size_t j = i + 1;
            while (j < e && !isPunct(t_, j, ":"))
                ++j;
            return j + 1;
        }
        if (isIdent(t_, i, "return") || isIdent(t_, i, "throw") ||
            isIdent(t_, i, "co_return")) {
            size_t semi = findSemi(i + 1, e);
            processRange(i + 1, semi, st);
            *terminated = true;
            return semi + 1;
        }
        if (isIdent(t_, i, "break") || isIdent(t_, i, "continue") ||
            isIdent(t_, i, "goto")) {
            *terminated = true;
            return findSemi(i, e) + 1;
        }
        if (isIdent(t_, i, "try") || isIdent(t_, i, "else"))
            return i + 1;
        if (isIdent(t_, i, "catch")) {
            size_t pc = isPunct(t_, i + 1, "(")
                            ? std::min(matchForward(t_, i + 1, '(', ')'), e)
                            : i;
            PathState cSt = st;
            bool ct = false;
            size_t k = step(pc + 1, e, cSt, &ct);
            if (!ct)
                st = joinState(st, cSt);
            return k;
        }
        size_t semi = findSemi(i, e);
        processRange(i, semi, st);
        return semi + 1;
    }

    /** First top-level `;` in [i, e), tracking bracket depth so the
     * body of an inline lambda never ends the statement. */
    size_t
    findSemi(size_t i, size_t e) const
    {
        int depth = 0;
        for (; i < e; ++i) {
            if (isPunct(t_, i, "(") || isPunct(t_, i, "[") ||
                isPunct(t_, i, "{"))
                ++depth;
            else if (isPunct(t_, i, ")") || isPunct(t_, i, "]") ||
                     isPunct(t_, i, "}"))
                --depth;
            else if (depth == 0 && isPunct(t_, i, ";"))
                return i;
        }
        return e;
    }

    // -- statement processing ----------------------------------------

    void
    processRange(size_t b, size_t e, PathState &st)
    {
        detectProtocolDecls(b, e, st);
        detectTicketBindings(b, e, st);
        for (size_t i = b; i < e; ++i) {
            if (!isIdent(t_, i) || !isPunct(t_, i + 1, "("))
                continue;
            if (i == b ||
                !(isPunct(t_, i - 1, ".") || isPunct(t_, i - 1, "->")))
                continue;
            size_t close = std::min(matchForward(t_, i + 1, '(', ')'), e);
            std::string recv = receiverPath(b, i - 1);
            handleCall(recv, t_[i].text, i + 2, close, t_[i].line, st);
        }
    }

    void
    detectProtocolDecls(size_t b, size_t e, PathState &st)
    {
        for (size_t i = b; i < e; ++i) {
            if (!isIdent(t_, i))
                continue;
            auto pit = tb_.protos.find(t_[i].text);
            if (pit == tb_.protos.end())
                continue;
            if (i > b &&
                (isPunct(t_, i - 1, ".") || isPunct(t_, i - 1, "->")))
                continue;   // member access, not a type
            if (!isIdent(t_, i + 1) ||
                kNotVarName.count(t_[i + 1].text) != 0 ||
                kStmtKeywords.count(t_[i + 1].text) != 0)
                continue;
            size_t after = i + 2;
            if (!(isPunct(t_, after, "(") || isPunct(t_, after, "{") ||
                  isPunct(t_, after, ";") || isPunct(t_, after, "=")))
                continue;
            const std::string &var = t_[i + 1].text;
            st.protoOf[var] = &pit->second;
            st.vars[var] = {{-1, 1}};   // virtual start state
        }
    }

    /** `auto r = srv.submitAsync(...)` binds `r.ticket` (or `r` when
     * the statement ends `.ticket`) to a fresh ticket of server `srv`;
     * `Ticket t = r.ticket;` aliases. */
    void
    detectTicketBindings(size_t b, size_t e, PathState &st)
    {
        for (size_t i = b; i < e; ++i) {
            if (!isIdent(t_, i) || !isPunct(t_, i + 1, "="))
                continue;
            const std::string var = t_[i].text;
            size_t j = i + 2;
            size_t ps = j;
            while (j < e &&
                   (isIdent(t_, j) || isPunct(t_, j, ".") ||
                    isPunct(t_, j, "->") || isPunct(t_, j, "::")))
                ++j;
            if (j < e && isPunct(t_, j, "(") && isIdent(t_, j - 1) &&
                j >= 2 &&
                (isPunct(t_, j - 2, ".") || isPunct(t_, j - 2, "->"))) {
                const std::string &m = t_[j - 1].text;
                const TicketProtocol *tp = nullptr;
                for (const auto &kv : tb_.tprotos)
                    if (kv.second.issue.count(m) != 0)
                        tp = &kv.second;
                if (tp == nullptr)
                    continue;
                std::string server = buildPath(ps, j - 2);
                if (server.empty())
                    continue;
                size_t close = matchForward(t_, j, '(', ')');
                std::string tpath = var + ".ticket";
                if (isPunct(t_, close + 1, ".") &&
                    isIdent(t_, close + 2, "ticket"))
                    tpath = var;
                int id = static_cast<int>(st.tickets.size());
                // Ids must be unique per body even across branches.
                id = nextTicketId_++;
                if (static_cast<size_t>(id) >= st.tickets.size())
                    st.tickets.resize(static_cast<size_t>(id) + 1);
                TicketFlags &tf = st.tickets[static_cast<size_t>(id)];
                tf.server = server;
                tf.issueLine = t_[i].line;
                st.ticketOf[tpath] = id;
            } else if (j <= e && (j == e || isPunct(t_, j, ";"))) {
                std::string path = buildPath(ps, j);
                auto it = st.ticketOf.find(path);
                if (it != st.ticketOf.end())
                    st.ticketOf[var] = it->second;
            }
        }
    }

    /** Join a simple path token range ("srv", "r . ticket") into dotted
     * form; empty when the range is not a simple path. */
    std::string
    buildPath(size_t b, size_t e) const
    {
        std::string s;
        for (size_t i = b; i < e; ++i) {
            if (isIdent(t_, i))
                s += t_[i].text;
            else if (isPunct(t_, i, ".") || isPunct(t_, i, "->"))
                s += ".";
            else if (isPunct(t_, i, "::"))
                s += "::";
            else
                return {};
        }
        return s;
    }

    /** Receiver of a member call whose `.`/`->` sits at @p dot: the
     * simple path ending there, or "" for complex receivers
     * (`tickets[i]`, `make().x`). */
    std::string
    receiverPath(size_t b, size_t dot) const
    {
        size_t i = dot;
        size_t lo = dot;
        while (i > b) {
            --i;
            if (isIdent(t_, i)) {
                lo = i;
                if (i > b && (isPunct(t_, i - 1, ".") ||
                              isPunct(t_, i - 1, "->") ||
                              isPunct(t_, i - 1, "::"))) {
                    --i;
                    continue;
                }
            }
            break;
        }
        if (!isIdent(t_, lo) || lo == dot)
            return {};
        if (lo > b && (isPunct(t_, lo - 1, ")") || isPunct(t_, lo - 1, "]")))
            return {};
        return buildPath(lo, dot);
    }

    void
    handleCall(const std::string &recv, const std::string &m, size_t ab,
               size_t ae, int line, PathState &st)
    {
        // Ticket lifecycle first (claims can hide in conditions).
        for (const auto &kv : tb_.tprotos) {
            const TicketProtocol &tp = kv.second;
            bool claiming = tp.claim.count(m) != 0;
            bool polling = tp.poll.count(m) != 0;
            if (claiming || polling) {
                std::vector<std::pair<size_t, size_t>> args;
                nxcommon::splitArgs(t_, ab, ae, args);
                std::string p = args.empty()
                                    ? std::string{}
                                    : buildPath(args[0].first,
                                                args[0].second);
                auto it = st.ticketOf.find(p);
                if (it != st.ticketOf.end()) {
                    TicketFlags &tf =
                        st.tickets[static_cast<size_t>(it->second)];
                    if (tf.drained) {
                        report(line, "ticket-double-claim",
                               m + "(" + p + ") after " + tf.drainedBy +
                                   "() already claimed every "
                                   "outstanding ticket (issued at line " +
                                   std::to_string(tf.issueLine) + ")");
                    } else if (tf.claimed) {
                        report(line, "ticket-double-claim",
                               "ticket " + p + " (issued at line " +
                                   std::to_string(tf.issueLine) +
                                   ") already claimed; each ticket is "
                                   "claimable exactly once");
                    } else if (claiming) {
                        tf.claimed = true;
                    }
                }
            }
            if (tp.drain.count(m) != 0 && !recv.empty()) {
                for (const auto &tk : st.ticketOf) {
                    TicketFlags &tf =
                        st.tickets[static_cast<size_t>(tk.second)];
                    if (!tf.claimed && !tf.drained && tf.server == recv) {
                        tf.drained = true;
                        tf.drainedBy = m;
                    }
                }
            }
        }

        // Class-protocol transition.
        auto vit = st.protoOf.find(recv);
        if (vit == st.protoOf.end())
            return;
        transition(*vit->second, recv, m, ab, ae, line, st);
    }

    void
    transition(const Protocol &proto, const std::string &var,
               const std::string &m, size_t ab, size_t ae, int line,
               PathState &st)
    {
        std::set<std::string> idents;
        for (size_t i = ab; i < ae; ++i)
            if (isIdent(t_, i))
                idents.insert(t_[i].text);

        // When any marked atom for this method has its marker present,
        // the call matches ONLY marked atoms; otherwise only unmarked.
        bool markerMode = false;
        for (const Phase &ph : proto.phases)
            for (const Atom &a : ph.atoms)
                if (a.method == m && !a.marker.empty() &&
                    idents.count(a.marker) != 0)
                    markerMode = true;
        auto phaseMatches = [&](const Phase &ph) {
            for (const Atom &a : ph.atoms) {
                if (a.method != m)
                    continue;
                if (markerMode
                        ? (!a.marker.empty() && idents.count(a.marker) != 0)
                        : a.marker.empty())
                    return true;
            }
            return false;
        };

        std::vector<int> matching;
        for (size_t q = 0; q < proto.phases.size(); ++q)
            if (phaseMatches(proto.phases[q]))
                matching.push_back(static_cast<int>(q));
        if (matching.empty())
            return;   // unconstrained method

        auto &S = st.vars[var];
        if (S.empty())
            S = {{-1, 1}};
        std::set<std::pair<int, int>> NS;
        for (const auto &[p, u] : S) {
            if (p >= 0 &&
                phaseMatches(proto.phases[static_cast<size_t>(p)]) &&
                multAllows(proto.phases[static_cast<size_t>(p)].mult, u))
                NS.insert({p, std::min(u + 1, 2)});
            bool canLeave =
                p < 0 ||
                leavable(proto.phases[static_cast<size_t>(p)].mult, u);
            if (!canLeave)
                continue;
            for (int q = p + 1;
                 q < static_cast<int>(proto.phases.size()); ++q) {
                const Phase &ph = proto.phases[static_cast<size_t>(q)];
                if (phaseMatches(ph))
                    NS.insert({q, 1});
                if (!skippable(ph))
                    break;
            }
        }
        if (!NS.empty()) {
            S = std::move(NS);
            return;
        }

        // Every possible phase rejects the call: classify and report.
        int maxM = matching.back();
        int last = static_cast<int>(proto.phases.size()) - 1;
        bool doubleFin = false;
        bool anyLast = false;
        bool allPast = true;
        for (const auto &[p, u] : S) {
            if (p == last)
                anyLast = true;
            if (p <= maxM)
                allPast = false;
            if (p == maxM && p == last &&
                !multAllows(proto.phases[static_cast<size_t>(p)].mult, u))
                doubleFin = true;
        }
        std::string head = proto.cls + "::" + m + "()";
        if (doubleFin) {
            report(line, "double-finish",
                   head + " repeats final phase '" +
                       phaseText(proto.phases[static_cast<size_t>(last)]) +
                       "' (protocol: " + proto.pretty + ")");
        } else if (allPast && anyLast) {
            report(line, "use-after-finish",
                   head + " called after '" +
                       phaseText(proto.phases[static_cast<size_t>(last)]) +
                       "' finished the object (protocol: " + proto.pretty +
                       ")");
        } else {
            // Name the first unskippable phase standing in the way,
            // when there is one.
            std::string blocker;
            int minP = S.empty() ? -1 : S.begin()->first;
            for (int q = minP + 1; q < maxM; ++q) {
                const Phase &ph = proto.phases[static_cast<size_t>(q)];
                if (!skippable(ph) && !phaseMatches(ph)) {
                    blocker = phaseText(ph);
                    break;
                }
            }
            std::string msg =
                blocker.empty()
                    ? head + " called out of protocol order (protocol: " +
                          proto.pretty + ")"
                    : head + " called before required phase '" + blocker +
                          "' (protocol: " + proto.pretty + ")";
            report(line, "protocol-order", msg);
        }
        S = {{maxM, 1}};   // repair: assume the call was meant here
    }

    void
    report(int line, const std::string &rule, const std::string &msg)
    {
        // Loop bodies run twice; identical findings dedupe here.
        if (!seen_.insert(std::make_tuple(line, rule, msg)).second)
            return;
        out_.push_back({std::string(file_), line, rule, msg});
    }

    std::string_view file_;
    const std::vector<Token> &t_;
    const Tables &tb_;
    std::vector<Finding> &out_;
    std::set<std::tuple<int, std::string, std::string>> seen_;
    int nextTicketId_ = 0;
};

// ---------------------------------------------------------------------------
// Body and lock scanning
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>> kNotFnName = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "new", "delete"};

const std::set<std::string, std::less<>> kTrailingQual = {
    "const", "noexcept", "override", "final", "mutable"};

/** Does the `{` at @p i open a function (or lambda) body? Mirrors
 * nxtaint's heuristic: walk back over trailing qualifiers (and a
 * trailing return type) to a `)`, then check what owns the matching
 * `(`. */
bool
startsFunctionBody(const std::vector<Token> &t, size_t i)
{
    if (i == 0)
        return false;
    size_t j = i - 1;
    while (j > 0 && isIdent(t, j) && kTrailingQual.count(t[j].text) != 0)
        --j;
    if (!isPunct(t, j, ")")) {
        // Maybe a trailing return type: `) -> std::vector<int> {`.
        size_t k = j;
        bool arrow = false;
        for (int lim = 0; k > 0 && lim < 24; ++lim) {
            if (isPunct(t, k, "->")) {
                arrow = true;
                --k;
                break;
            }
            if (isIdent(t, k) || t[k].kind == Tok::Number ||
                isPunct(t, k, "::") || isPunct(t, k, "<") ||
                isPunct(t, k, ">") || isPunct(t, k, "*") ||
                isPunct(t, k, "&") || isPunct(t, k, ",") ||
                isPunct(t, k, "[") || isPunct(t, k, "]")) {
                --k;
                continue;
            }
            break;
        }
        if (!arrow)
            return false;
        j = k;
        while (j > 0 && isIdent(t, j) && kTrailingQual.count(t[j].text) != 0)
            --j;
        if (!isPunct(t, j, ")"))
            return false;
    }
    size_t o = nxcommon::matchBackward(t, j, '(', ')');
    if (o >= t.size() || o == 0)
        return false;
    size_t p = o - 1;
    if (isIdent(t, p))
        return kNotFnName.count(t[p].text) == 0;
    return isPunct(t, p, "]") || isPunct(t, p, ">");
}

/** Class owning an out-of-line definition (`X::f(...) {`), or "". */
std::string
outOfLineClass(const std::vector<Token> &t, size_t bodyIdx)
{
    size_t j = bodyIdx - 1;
    while (j > 0 && isIdent(t, j) && kTrailingQual.count(t[j].text) != 0)
        --j;
    if (!isPunct(t, j, ")"))
        return {};
    size_t o = nxcommon::matchBackward(t, j, '(', ')');
    if (o >= t.size() || o < 3)
        return {};
    if (isIdent(t, o - 1) && isPunct(t, o - 2, "::") && isIdent(t, o - 3))
        return t[o - 3].text;
    return {};
}

/** RAII lock acquisitions in one body: scope-stack the held set and
 * record a global edge held -> new for every nesting. */
void
lockScan(const std::vector<Token> &t, size_t b, size_t e,
         const std::string &cls, std::string_view file, LockGraph &lg)
{
    struct Held
    {
        int depth;
        size_t node;
    };
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
        if (isPunct(t, i, "{")) {
            ++depth;
            continue;
        }
        if (isPunct(t, i, "}")) {
            --depth;
            while (!held.empty() && held.back().depth > depth)
                held.pop_back();
            continue;
        }
        if (!isIdent(t, i) || kLockTypes.count(t[i].text) == 0)
            continue;
        size_t j = i + 1;
        if (isPunct(t, j, "<"))
            j = matchForward(t, j, '<', '>') + 1;
        if (!isIdent(t, j) || !isPunct(t, j + 1, "("))
            continue;
        size_t close = matchForward(t, j + 1, '(', ')');
        if (close >= t.size() || close > e)
            continue;
        std::vector<std::pair<size_t, size_t>> args;
        nxcommon::splitArgs(t, j + 2, close, args);
        for (const auto &[ab, ae] : args) {
            std::string path;
            bool simple = true;
            for (size_t k = ab; k < ae; ++k) {
                if (isIdent(t, k))
                    path += t[k].text;
                else if (isPunct(t, k, ".") || isPunct(t, k, "->"))
                    path += ".";
                else if (isPunct(t, k, "::"))
                    path += "::";
                else if (isPunct(t, k, "*") || isPunct(t, k, "&"))
                    continue;   // deref/addr-of: name the object
                else
                    simple = false;
            }
            if (!simple || path.empty())
                continue;
            bool isTag = false;
            for (const auto &tag : kLockTags)
                if (path.size() >= tag.size() &&
                    path.compare(path.size() - tag.size(), tag.size(),
                                 tag) == 0)
                    isTag = true;
            if (isTag)
                continue;
            std::string name =
                (!cls.empty() && path.find('.') == std::string::npos &&
                 path.find("::") == std::string::npos)
                    ? cls + "::" + path
                    : path;
            size_t node = lg.intern(name);
            for (const Held &h : held)
                if (h.node != node)
                    lg.edges.emplace(std::make_pair(h.node, node),
                                     LockEdge{node, std::string(file),
                                              t[i].line});
            held.push_back({depth, node});
        }
        i = close;
    }
}

/** Walk one file's merged tokens: track class context, find function
 * bodies, run the typestate walker and the lock scanner on each. */
void
scanFile(const std::vector<Token> &t, std::string_view file,
         const Tables &tb, std::vector<Finding> &out, LockGraph &lg)
{
    struct Frame
    {
        bool isClass;
        std::string cls;
    };
    std::vector<Frame> stack;
    std::string pendingClass;
    for (size_t i = 0; i < t.size(); ++i) {
        if (isIdent(t, i, "class") || isIdent(t, i, "struct")) {
            if (i > 0 && isIdent(t, i - 1, "enum"))
                continue;
            if (isIdent(t, i + 1))
                pendingClass = t[i + 1].text;
            continue;
        }
        if (isPunct(t, i, ";")) {
            pendingClass.clear();
            continue;
        }
        if (isPunct(t, i, "{")) {
            if (!pendingClass.empty()) {
                stack.push_back({true, pendingClass});
                pendingClass.clear();
                continue;
            }
            if (startsFunctionBody(t, i)) {
                size_t m = matchForward(t, i, '{', '}');
                if (m >= t.size()) {
                    stack.push_back({false, {}});
                    continue;
                }
                std::string cls = outOfLineClass(t, i);
                if (cls.empty())
                    for (auto it = stack.rbegin(); it != stack.rend();
                         ++it)
                        if (it->isClass) {
                            cls = it->cls;
                            break;
                        }
                BodyCheck(file, t, tb, out).run(i + 1, m);
                lockScan(t, i + 1, m, cls, file, lg);
                i = m;   // bodies are consumed whole
                continue;
            }
            stack.push_back({false, {}});
            continue;
        }
        if (isPunct(t, i, "}")) {
            if (!stack.empty())
                stack.pop_back();
            continue;
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-cycle detection + DOT
// ---------------------------------------------------------------------------

void
lockCycles(const LockGraph &lg, std::vector<Finding> &out)
{
    size_t n = lg.names.size();
    std::vector<std::vector<std::pair<size_t, const LockEdge *>>> adj(n);
    for (const auto &kv : lg.edges)
        adj[kv.first.first].emplace_back(kv.first.second, &kv.second);

    enum class Color { White, Grey, Black };
    std::vector<Color> color(n, Color::White);
    std::vector<size_t> stack;
    struct Frame
    {
        size_t node;
        size_t next = 0;
    };
    for (size_t start = 0; start < n; ++start) {
        if (color[start] != Color::White)
            continue;
        std::vector<Frame> frames{{start}};
        color[start] = Color::Grey;
        stack.push_back(start);
        while (!frames.empty()) {
            Frame &f = frames.back();
            if (f.next >= adj[f.node].size()) {
                color[f.node] = Color::Black;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            auto [to, edge] = adj[f.node][f.next++];
            if (color[to] == Color::Grey) {
                auto pos = std::find(stack.begin(), stack.end(), to);
                std::string chain;
                for (auto it = pos; it != stack.end(); ++it)
                    chain += lg.names[*it] + " -> ";
                chain += lg.names[to];
                out.push_back({edge->file, edge->line, "lock-cycle",
                               "lock-order cycle (potential deadlock): " +
                                   chain});
            } else if (color[to] == Color::White) {
                color[to] = Color::Grey;
                stack.push_back(to);
                frames.push_back({to});
            }
        }
    }
}

std::string
lockDot(const LockGraph &lg)
{
    std::ostringstream dot;
    dot << "digraph nxstate_locks {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=box];\n";
    for (const std::string &n : lg.names)
        dot << "  \"" << n << "\";\n";
    for (const auto &kv : lg.edges)
        dot << "  \"" << lg.names[kv.first.first] << "\" -> \""
            << lg.names[kv.first.second] << "\";  // " << kv.second.file
            << ":" << kv.second.line << "\n";
    dot << "}\n";
    return dot.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

Analysis
analyzeFiles(const std::vector<SourceFile> &files)
{
    Analysis an;
    size_t n = files.size();
    std::vector<std::vector<Token>> merged(n);
    std::vector<std::vector<Allow>> allows(n);
    std::vector<Finding> raw;
    Tables tb;

    for (size_t i = 0; i < n; ++i) {
        std::vector<Token> rawToks = Lexer(files[i].content).run();
        allows[i] = nxcommon::collectAllows(rawToks, "nxstate", kRules,
                                            raw, files[i].path);
        collectCommentProtocols(rawToks, files[i].path, tb, raw);
        merged[i] = nxcommon::mergeOperators(rawToks);
        collectMacroProtocols(merged[i], files[i].path, tb, raw);
    }

    LockGraph lg;
    for (size_t i = 0; i < n; ++i)
        scanFile(merged[i], files[i].path, tb, raw, lg);
    lockCycles(lg, raw);
    an.lockDot = lockDot(lg);

    std::map<std::string, size_t> idx;
    for (size_t i = 0; i < n; ++i)
        idx.emplace(files[i].path, i);
    std::vector<std::vector<Finding>> perFile(n);
    for (Finding &f : raw) {
        auto it = idx.find(f.file);
        if (it == idx.end())
            an.findings.push_back(std::move(f));
        else
            perFile[it->second].push_back(std::move(f));
    }
    for (size_t i = 0; i < n; ++i)
        nxcommon::applyAllows(std::move(perFile[i]), allows[i],
                              files[i].path, an.findings);
    nxcommon::sortFindings(an.findings);
    return an;
}

Analysis
analyzeTree(const std::string &root)
{
    nxcommon::TreeLoad tree = nxcommon::loadTree(
        root, {"src", "tools", "bench", "examples"});
    Analysis an = analyzeFiles(tree.files);
    an.findings.insert(an.findings.begin(), tree.ioErrors.begin(),
                       tree.ioErrors.end());
    return an;
}

std::string
format(const Finding &f)
{
    return nxcommon::formatText(f);
}

} // namespace nxstate
