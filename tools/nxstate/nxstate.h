/**
 * @file
 * nxstate — typestate protocol + lock-order analyzer.
 *
 * The fourth member of the in-tree static-analysis family (nxlint:
 * tokens, nxdeps: include edges, nxtaint: values). nxstate checks
 * *object lifecycles*: classes whose methods must be called in a
 * declared order (a stream must not be written after Finish, a ticket
 * must not be claimed twice) and mutexes that must be acquired in a
 * consistent global order.
 *
 * Protocols are declared next to the class they govern, either with
 * the macros from src/util/protocol.h:
 *
 *     NXSIM_PROTOCOL(DeflateStream,
 *                    setDictionary? -> write* -> write[Finish]);
 *     NXSIM_TICKET_PROTOCOL(JobServer, issue(submitAsync, submitWithRetry),
 *                           claim(wait), poll(poll), drain(drain),
 *                           stop(drainAndStop));
 *
 * or, for classes that must stay macro-free, as a comment:
 *
 *     // nxstate: protocol(BitWriter: {writeBits|alignToByte|drain}* -> take)
 *
 * Protocol grammar (one spec per class):
 *
 *     spec   := phase ('->' phase)*
 *     phase  := group mult?
 *     group  := atom | '{' atom ('|' atom)* '}'
 *     atom   := method | method '[' Marker ']'
 *     mult   := '*' (zero or more) | '+' (one or more)
 *            |  '?' (at most once)  | <none> (exactly once)
 *
 * `method[Marker]` matches a call whose argument list mentions the
 * identifier Marker (e.g. `write[Finish]` matches
 * `s.write(data, Flush::Finish, out)`); when a marked atom exists for
 * a method, unmarked calls of that method match only the unmarked
 * atoms. Methods that appear in no atom are unconstrained.
 *
 * The checker walks each function body's token stream as a small CFG
 * (if/else joins, loop bodies walked twice, switch cases isolated,
 * early returns terminate their path) tracking the *set* of phases
 * each protocol-typed local could be in. A finding fires only when
 * every possible phase rejects the call — must-violation semantics,
 * so branchy code never produces maybe-findings.
 *
 * Rules:
 *   protocol-order      method called before its declared phase is
 *                       reachable (e.g. a finish call before a
 *                       required earlier phase, or submit after
 *                       drainAndStop)
 *   use-after-finish    method of an earlier phase called after the
 *                       final phase consumed the object
 *   double-finish       a once-only final phase entered twice
 *   ticket-double-claim a ticket claimed twice, or claimed/polled
 *                       after drain() already claimed it
 *   lock-cycle          the global lock-acquisition graph has a cycle
 *                       (potential deadlock); --dot prints the graph
 *   protocol-decl       malformed or conflicting protocol declaration
 *   bare-allow          allow() without a justification / unknown rule
 *   stale-allow         allow() that no longer suppresses anything
 *   io-error            file could not be read
 *
 * Findings print as `file:line: rule-id: message` and can be
 * suppressed where they fire with
 *
 *     // nxstate: allow(rule-id): why this instance is fine
 *
 * (the shared grammar of tools/common/allow.h).
 */

#ifndef NXSIM_NXSTATE_NXSTATE_H
#define NXSIM_NXSTATE_NXSTATE_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"
#include "common/fileset.h"

namespace nxstate {

/** One diagnostic (the shared analyzer-family shape). */
using Finding = nxcommon::Finding;

/** Rule metadata for --list-rules and the docs. */
using RuleInfo = nxcommon::RuleInfo;

/** One input file: tree-relative path plus its full contents. */
using SourceFile = nxcommon::SourceFile;

/** Everything one run produces. */
struct Analysis
{
    std::vector<Finding> findings;

    /** GraphViz DOT of the global lock-order graph. */
    std::string lockDot;
};

/** All rules, in the order they are checked. */
const std::vector<RuleInfo> &rules();

/**
 * Analyze an in-memory tree (fixture trees in tests, or the real one
 * loaded by analyzeTree). Protocol declarations are collected from
 * every file first, then every function body is checked, so a class
 * annotated in its header is enforced in every .cc.
 */
[[nodiscard]] Analysis analyzeFiles(const std::vector<SourceFile> &files);

/**
 * Load every *.h / *.hpp / *.cc / *.cpp under @p root's src/, tools/,
 * bench/ and examples/ subtrees (or @p root itself when none exist)
 * and analyze them. tests/ and fuzz/ are deliberately out of scope:
 * they exercise misuse on purpose. Unreadable files produce an
 * "io-error" finding.
 */
[[nodiscard]] Analysis analyzeTree(const std::string &root);

/** Render a finding as `file:line: rule-id: message`. */
std::string format(const Finding &f);

} // namespace nxstate

#endif // NXSIM_NXSTATE_NXSTATE_H
