/**
 * @file
 * nxstate CLI — a thin ToolSpec over the shared analyzer driver
 * (tools/common/driver.h owns argument parsing, --format=json, file
 * lists and the 0/1/2 exit-code convention).
 *
 * Usage:
 *   nxstate [--list-rules] [--dot] [--format=text|json]
 *           [--root=<dir>] [<repo-root> | <file>...]
 *
 * nxstate is a whole-tree tool: protocol declarations live in headers
 * and lock-order edges only mean something globally, so explicit file
 * arguments analyze the tree at --root (default ".") and report only
 * findings landing in those files. `--dot` prints the lock-order
 * graph as GraphViz DOT instead of findings — that output is what the
 * DESIGN.md lock-order figure is generated from.
 */

#include <cstdio>
#include <string>

#include "common/driver.h"
#include "nxstate/nxstate.h"

int
main(int argc, char **argv)
{
    nxcommon::ToolSpec spec;
    spec.name = "nxstate";
    spec.usageArgs = "[--dot] [--root=<dir>] [<repo-root> | <file>...]";
    spec.rules = &nxstate::rules();
    spec.analyzeTree = [](const std::string &root) {
        return nxstate::analyzeTree(root).findings;
    };
    spec.modes.emplace_back("--dot", [](const std::string &root) {
        std::printf("%s", nxstate::analyzeTree(root).lockDot.c_str());
        return 0;
    });
    return nxcommon::runTool(argc, argv, spec);
}
