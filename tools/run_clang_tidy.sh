#!/usr/bin/env sh
# Run clang-tidy over the project sources using the repo .clang-tidy.
#
#   tools/run_clang_tidy.sh -p BUILD_DIR [FILE...]
#
# BUILD_DIR must contain compile_commands.json (the root CMakeLists
# sets CMAKE_EXPORT_COMPILE_COMMANDS). With no FILE arguments every
# .cc under src/ is checked; ci.sh passes just the files changed on
# the branch. Exits 0 with a notice when clang-tidy is not installed,
# so the `lint` target and CI stay usable on gcc-only machines.
set -eu

build_dir=""
while [ $# -gt 0 ]; do
    case "$1" in
      -p)
        build_dir="$2"
        shift 2
        ;;
      -p*)
        build_dir="${1#-p}"
        shift
        ;;
      *)
        break
        ;;
    esac
done

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy.sh: clang-tidy not found; skipping lint" >&2
    exit 0
fi

if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy.sh: no compile_commands.json; configure a" \
         "build dir first (cmake --preset default) and pass -p DIR" >&2
    exit 1
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if [ $# -gt 0 ]; then
    files="$*"
else
    files=$(find "$repo_root/src" -name '*.cc' | sort)
fi

status=0
for f in $files; do
    case "$f" in
      *.cc) ;;
      *) continue ;;    # headers are covered via HeaderFilterRegex
    esac
    echo "clang-tidy $f"
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
done
exit $status
