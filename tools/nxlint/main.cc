/**
 * @file
 * nxlint CLI.
 *
 * Usage:
 *   nxlint [--list-rules] [<repo-root> | <file>...]
 *
 * With a directory argument (default: the current directory) the tool
 * lints every *.h / *.cc under its src/, tools/, fuzz/ and bench/
 * subtrees. Explicit file arguments are linted one by one; a file whose
 * path does not sit under a recognized tree is held to the strictest
 * (library-code) rule set. Exit status: 0 clean, 1 findings, 2 usage
 * or I/O error.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nxlint/nxlint.h"

namespace {

int
listRules()
{
    for (const nxlint::RuleInfo &r : nxlint::rules())
        std::printf("%-24s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
    return 0;
}

bool
lintOneFile(const std::string &path, std::vector<nxlint::Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "nxlint: cannot read %s\n", path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string content = ss.str();
    for (nxlint::Finding &f : nxlint::lintFile(path, content))
        out.push_back(std::move(f));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules")
            return listRules();
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: nxlint [--list-rules] [<repo-root> | <file>...]\n");
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "nxlint: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
        args.push_back(arg);
    }
    if (args.empty())
        args.push_back(".");

    std::vector<nxlint::Finding> findings;
    bool ioOk = true;
    size_t filesLinted = 0;
    for (const std::string &arg : args) {
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            for (nxlint::Finding &f : nxlint::lintTree(arg))
                findings.push_back(std::move(f));
            ++filesLinted;    // counted per tree; detail printed below
        } else {
            ioOk = lintOneFile(arg, findings) && ioOk;
            ++filesLinted;
        }
    }

    for (const nxlint::Finding &f : findings)
        std::printf("%s\n", nxlint::format(f).c_str());
    if (!ioOk)
        return 2;
    if (!findings.empty()) {
        std::fprintf(stderr, "nxlint: %zu finding%s\n", findings.size(),
                     findings.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
