/**
 * @file
 * nxlint CLI — a thin ToolSpec over the shared analyzer driver
 * (tools/common/driver.h owns argument parsing, --format=json, file
 * lists and the 0/1/2 exit-code convention).
 *
 * Usage:
 *   nxlint [--list-rules] [--format=text|json] [<repo-root> | <file>...]
 *
 * With a directory argument (default: the current directory) the tool
 * lints every *.h / *.cc under its src/, tools/, fuzz/ and bench/
 * subtrees. Explicit file arguments are linted one by one; a file whose
 * path does not sit under a recognized tree is held to the strictest
 * (library-code) rule set.
 */

#include "common/driver.h"
#include "nxlint/nxlint.h"

int
main(int argc, char **argv)
{
    nxcommon::ToolSpec spec;
    spec.name = "nxlint";
    spec.usageArgs = "[<repo-root> | <file>...]";
    spec.rules = &nxlint::rules();
    spec.analyzeFile = nxlint::lintFile;
    spec.analyzeTree = nxlint::lintTree;
    return nxcommon::runTool(argc, argv, spec);
}
