/**
 * @file
 * nxlint implementation: token-pattern rules over the shared analyzer
 * engine (tools/common/ — one lexer, one allow() grammar, one tree
 * walker for the whole nxlint/nxdeps/nxtaint/nxstate family). The
 * lexer understands comments, string/char literals (raw strings
 * included), numbers and preprocessor lines — enough that a banned
 * identifier inside a string or comment never fires, and a
 * suppression comment is visible next to the code it excuses.
 */

#include "nxlint/nxlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <set>

#include "common/allow.h"
#include "common/fileset.h"
#include "common/lexer.h"

namespace nxlint {

namespace {

using nxcommon::Allow;
using nxcommon::relFromTree;
using nxlex::identChar;
using nxlex::Lexer;
using nxlex::Tok;
using nxlex::Token;

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

struct Scope
{
    std::string rel;       // path from the tree root ("src/nx/crb.h")
    bool isHeader = false;
    bool isSrc = false;    // library code: src/ (or an unrecognized path)
    bool isUtil = false;   // src/util/: the whitelisted helper layer
};

Scope
scopeFor(std::string_view path)
{
    Scope sc;
    sc.rel = relFromTree(path);
    std::string_view name = sc.rel.empty() ? path : sc.rel;
    sc.isHeader = name.size() > 2 && (name.ends_with(".h") ||
                                      name.ends_with(".hpp"));
    if (sc.rel.empty()) {
        // Scratch file: lint at the strictest scope, as library code.
        sc.isSrc = true;
    } else {
        sc.isSrc = sc.rel.rfind("src/", 0) == 0;
        sc.isUtil = sc.rel.rfind("src/util/", 0) == 0;
    }
    return sc;
}

std::string
expectedGuard(std::string_view path)
{
    // NXSIM_<PARENT-DIR>_<STEM>_H, non-alphanumerics folded to '_'.
    std::filesystem::path p{std::string(path)};
    std::string dir = p.parent_path().filename().string();
    std::string stem = p.stem().string();
    std::string out = "NXSIM_";
    auto append = [&out](const std::string &part) {
        for (char c : part)
            out += std::isalnum(static_cast<unsigned char>(c))
                       ? static_cast<char>(
                             std::toupper(static_cast<unsigned char>(c)))
                       : '_';
    };
    if (!dir.empty() && dir != ".") {
        append(dir);
        out += '_';
    }
    append(stem);
    out += "_H";
    return out;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"include-guard",
     "headers carry an #ifndef/#define guard named NXSIM_<DIR>_<FILE>_H"},
    {"using-namespace-header",
     "no `using namespace` at any scope in a header"},
    {"banned-call",
     "assert/abort/sprintf/atoi-family calls are banned in src/; "
     "use the contracts layer (src/util/contracts.h)"},
    {"banned-include",
     "<cassert>/<assert.h> are banned in src/; include util/contracts.h"},
    {"raw-memcpy",
     "memcpy with a runtime-computed size is banned in src/ outside "
     "src/util/; use nx::copyBytes (src/util/checked.h)"},
    {"narrow-cast",
     "bare static_cast to a narrow integer is banned in src/ outside "
     "src/util/; use nx::checked_cast or nx::truncate_cast"},
    {"nodiscard-status",
     "header functions returning a status type (CondCode, Csb, *Status, "
     "*Result) must be [[nodiscard]]"},
    {"raw-thread",
     "std::thread/jthread/async is banned in src/ outside "
     "src/core/job_server.*, src/load/load_gen.cc and src/util/ — "
     "route work through core::JobServer; detach() is banned "
     "everywhere in src/"},
    {"mutex-annotation",
     "a mutex member in a src/ header must guard something: the file "
     "needs NXSIM_GUARDED_BY(<that mutex>) on at least one member "
     "(src/util/thread_annotations.h)"},
    {"todo-tag",
     "TODO/FIXME comments must carry an issue tag: TODO(#123)"},
    {"bare-allow",
     "nxlint suppressions must name a known rule and justify it: "
     "// nxlint: allow(<rule>): <why>"},
    {"stale-allow",
     "an allow() that no longer suppresses any finding is itself a "
     "finding; delete it"},
    {"io-error", "file could not be read"},
};

using nxlex::trim;

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Index of the previous non-comment token, or npos.
size_t
prevSig(const std::vector<Token> &toks, size_t i)
{
    while (i > 0) {
        --i;
        if (toks[i].kind != Tok::Comment)
            return i;
    }
    return static_cast<size_t>(-1);
}

/// Index of the next non-comment token, or npos.
size_t
nextSig(const std::vector<Token> &toks, size_t i)
{
    for (++i; i < toks.size(); ++i)
        if (toks[i].kind != Tok::Comment)
            return i;
    return static_cast<size_t>(-1);
}

bool
isPunct(const std::vector<Token> &toks, size_t i, char c)
{
    return i < toks.size() && toks[i].kind == Tok::Punct &&
           toks[i].text.size() == 1 && toks[i].text[0] == c;
}

bool
isIdent(const std::vector<Token> &toks, size_t i, std::string_view name)
{
    return i < toks.size() && toks[i].kind == Tok::Ident &&
           toks[i].text == name;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct PpDirective
{
    std::string keyword;
    std::string rest;
};

PpDirective
parsePp(const std::string &text)
{
    PpDirective d;
    size_t i = 0;
    while (i < text.size() &&
           (text[i] == '#' ||
            std::isspace(static_cast<unsigned char>(text[i]))))
        ++i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
        d.keyword += text[i++];
    d.rest = std::string(trim(std::string_view(text).substr(i)));
    return d;
}

void
checkIncludeGuard(const std::vector<Token> &toks, const Scope &sc,
                  std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isHeader || toks.empty())
        return;
    std::string want = expectedGuard(sc.rel.empty() ? file : sc.rel);
    size_t first = static_cast<size_t>(-1);
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Comment) {
            first = i;
            break;
        }
    }
    if (first == static_cast<size_t>(-1))
        return;    // comment-only header
    const Token &t = toks[first];
    if (t.kind != Tok::Pp) {
        out.push_back({std::string(file), t.line, "include-guard",
                       "header must open with #ifndef " + want});
        return;
    }
    PpDirective open = parsePp(t.text);
    if (open.keyword != "ifndef") {
        out.push_back({std::string(file), t.line, "include-guard",
                       "header must open with #ifndef " + want +
                           " (found #" + open.keyword + ")"});
        return;
    }
    std::string got{trim(open.rest)};
    if (got != want) {
        out.push_back({std::string(file), t.line, "include-guard",
                       "guard is " + got + ", expected " + want});
        return;
    }
    size_t next = nextSig(toks, first);
    PpDirective def = next != static_cast<size_t>(-1) &&
                              toks[next].kind == Tok::Pp
                          ? parsePp(toks[next].text)
                          : PpDirective{};
    if (def.keyword != "define" || std::string(trim(def.rest)) != want) {
        out.push_back({std::string(file), t.line, "include-guard",
                       "#ifndef " + want +
                           " must be followed by #define " + want});
        return;
    }
    for (size_t i = toks.size(); i-- > next;) {
        if (toks[i].kind == Tok::Pp &&
            parsePp(toks[i].text).keyword == "endif")
            return;
    }
    out.push_back({std::string(file), toks.back().line, "include-guard",
                   "guard #endif is missing"});
}

void
checkUsingNamespace(const std::vector<Token> &toks, const Scope &sc,
                    std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isHeader)
        return;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (isIdent(toks, i, "using") &&
            isIdent(toks, nextSig(toks, i), "namespace")) {
            out.push_back({std::string(file), toks[i].line,
                           "using-namespace-header",
                           "`using namespace` leaks into every includer; "
                           "qualify names instead"});
        }
    }
}

const std::map<std::string_view, std::string_view> kBannedCalls = {
    {"assert", "NXSIM_ASSERT / NXSIM_EXPECT (util/contracts.h)"},
    {"abort", "NXSIM_UNREACHABLE or a contract (util/contracts.h)"},
    {"sprintf", "snprintf"},
    {"vsprintf", "vsnprintf"},
    {"atoi", "std::from_chars with a range check"},
    {"atol", "std::from_chars with a range check"},
    {"atoll", "std::from_chars with a range check"},
    {"gets", "fgets"},
    {"strcpy", "nx::copyBytes with an explicit size"},
    {"strcat", "std::string"},
    {"alloca", "a fixed buffer or std::vector"},
};

void
checkBannedCalls(const std::vector<Token> &toks, const Scope &sc,
                 std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isSrc)
        return;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident)
            continue;
        auto it = kBannedCalls.find(toks[i].text);
        if (it == kBannedCalls.end())
            continue;
        if (!isPunct(toks, nextSig(toks, i), '('))
            continue;
        size_t p = prevSig(toks, i);
        if (isPunct(toks, p, '.'))
            continue;    // member access, a different function entirely
        if (isPunct(toks, p, '>') &&
            isPunct(toks, prevSig(toks, p), '-'))
            continue;    // `->` member access
        out.push_back({std::string(file), toks[i].line, "banned-call",
                       "`" + toks[i].text +
                           "` is banned in library code; use " +
                           std::string(it->second)});
    }
}

void
checkBannedIncludes(const std::vector<Token> &toks, const Scope &sc,
                    std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isSrc)
        return;
    for (const Token &t : toks) {
        if (t.kind != Tok::Pp)
            continue;
        PpDirective d = parsePp(t.text);
        if (d.keyword != "include")
            continue;
        if (d.rest.find("cassert") != std::string::npos ||
            d.rest.find("assert.h") != std::string::npos) {
            out.push_back({std::string(file), t.line, "banned-include",
                           "include util/contracts.h instead of " +
                               d.rest});
        }
    }
}

/// Top-level argument ranges [begin, end) of a call starting at `open`
/// (the '(' token). Returns the index one past the closing ')'.
size_t
splitArgs(const std::vector<Token> &toks, size_t open,
          std::vector<std::pair<size_t, size_t>> &args)
{
    int depth = 0;
    size_t argStart = open + 1;
    size_t i = open;
    for (; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Tok::Punct)
            continue;
        char c = t.text[0];
        if (c == '(' || c == '[' || c == '{') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            --depth;
            if (depth == 0) {
                if (i > argStart)
                    args.emplace_back(argStart, i);
                return i + 1;
            }
        } else if (c == ',' && depth == 1) {
            args.emplace_back(argStart, i);
            argStart = i + 1;
        }
    }
    return i;
}

void
checkRawMemcpy(const std::vector<Token> &toks, const Scope &sc,
               std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isSrc || sc.isUtil)
        return;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks, i, "memcpy") && !isIdent(toks, i, "memmove") &&
            !isIdent(toks, i, "memset"))
            continue;
        size_t open = nextSig(toks, i);
        if (!isPunct(toks, open, '('))
            continue;
        std::vector<std::pair<size_t, size_t>> args;
        splitArgs(toks, open, args);
        if (args.size() < 3)
            continue;
        auto [b, e] = args.back();
        // A compile-time-constant size is fine: a single integer
        // literal, or a sizeof expression.
        bool constantSize =
            (e - b == 1 && toks[b].kind == Tok::Number) ||
            isIdent(toks, b, "sizeof");
        if (!constantSize) {
            out.push_back({std::string(file), toks[i].line, "raw-memcpy",
                           "`" + toks[i].text +
                               "` with a runtime size; use nx::copyBytes "
                               "(util/checked.h) so null/overlap "
                               "contracts apply"});
        }
    }
}

const std::set<std::string, std::less<>> kNarrowTypes = {
    "int8_t", "uint8_t", "int16_t", "uint16_t", "int32_t", "uint32_t",
    "int", "unsigned", "unsigned int", "short", "short int",
    "unsigned short", "unsigned short int", "char", "signed char",
    "unsigned char", "char8_t",
};

void
checkNarrowCast(const std::vector<Token> &toks, const Scope &sc,
                std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isSrc || sc.isUtil)
        return;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks, i, "static_cast"))
            continue;
        size_t lt = nextSig(toks, i);
        if (!isPunct(toks, lt, '<'))
            continue;
        // Collect the type tokens to the matching '>'.
        int depth = 0;
        bool pointerish = false;
        std::vector<std::string> words;
        size_t j = lt;
        for (; j < toks.size(); ++j) {
            if (isPunct(toks, j, '<')) {
                ++depth;
            } else if (isPunct(toks, j, '>')) {
                if (--depth == 0)
                    break;
            } else if (isPunct(toks, j, '*') || isPunct(toks, j, '&')) {
                pointerish = true;
            } else if (toks[j].kind == Tok::Ident && toks[j].text != "std" &&
                       toks[j].text != "const" &&
                       toks[j].text != "volatile") {
                words.push_back(toks[j].text);
            }
        }
        if (pointerish || words.empty())
            continue;
        std::string type = words[0];
        for (size_t w = 1; w < words.size(); ++w)
            type += " " + words[w];
        if (kNarrowTypes.count(type) == 0)
            continue;
        out.push_back(
            {std::string(file), toks[i].line, "narrow-cast",
             "bare static_cast<" + type +
                 "> may drop bits; use nx::checked_cast<" + type +
                 "> (value-preserving) or nx::truncate_cast<" + type +
                 "> (intentional truncation)"});
    }
}

bool
isStatusType(const std::string &name)
{
    if (name == "CondCode" || name == "Csb")
        return true;
    auto endsWith = [&name](std::string_view suf) {
        return name.size() > suf.size() && name.ends_with(suf);
    };
    return endsWith("Status") || endsWith("Result");
}

const std::set<std::string, std::less<>> kDeclPrefix = {
    "inline", "static", "constexpr", "virtual", "explicit", "friend",
    "extern", "const",
};

void
checkNodiscard(const std::vector<Token> &toks, const Scope &sc,
               std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isHeader)
        return;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident || !isStatusType(toks[i].text))
            continue;
        size_t name = nextSig(toks, i);
        if (name == static_cast<size_t>(-1) ||
            toks[name].kind != Tok::Ident)
            continue;
        if (!isPunct(toks, nextSig(toks, name), '('))
            continue;
        // Scan the declaration prefix backwards for [[nodiscard]].
        bool nodiscard = false;
        bool declaration = true;
        size_t p = prevSig(toks, i);
        while (p != static_cast<size_t>(-1)) {
            const Token &t = toks[p];
            if (t.kind == Tok::Pp) {
                break;    // start of a declaration after a directive
            } else if (t.kind == Tok::Ident) {
                if (t.text == "nodiscard") {
                    nodiscard = true;
                } else if (kDeclPrefix.count(t.text) == 0) {
                    declaration = false;    // `struct X`, `return x`, ...
                    break;
                }
            } else if (t.kind == Tok::Punct) {
                char c = t.text[0];
                if (c == ';' || c == '{' || c == '}' || c == ':')
                    break;    // clean declaration start
                if (c == '[' || c == ']')
                    ;    // attribute brackets; keep scanning
                else {
                    declaration = false;    // parameter or expression
                    break;
                }
            } else {
                declaration = false;
                break;
            }
            p = prevSig(toks, p);
        }
        if (declaration && !nodiscard) {
            out.push_back({std::string(file), toks[i].line,
                           "nodiscard-status",
                           "function returning " + toks[i].text +
                               " must be [[nodiscard]] — dropping a "
                               "status is how output-cap bugs hide"});
        }
    }
}

/**
 * Concurrency primitives stay behind the dispatch layer. Spawning a
 * raw std::thread (or jthread/async) anywhere else in src/ forks the
 * threading model: such a thread is invisible to core::JobServer's
 * drain/stats machinery and to the TSan-gated concurrency suite.
 * detach() is worse — an orphaned thread can outlive shutdown — so it
 * is banned even inside the whitelisted files.
 */
void
checkRawThread(const std::vector<Token> &toks, const Scope &sc,
               std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isSrc)
        return;
    // load_gen.cc's client threads are the *requesters* the JobServer
    // serves — modelling them through the server would be circular.
    bool whitelisted = sc.isUtil ||
                       sc.rel == "src/core/job_server.cc" ||
                       sc.rel == "src/core/job_server.h" ||
                       sc.rel == "src/load/load_gen.cc";
    for (size_t i = 0; i < toks.size(); ++i) {
        if (isIdent(toks, i, "detach")) {
            size_t p = prevSig(toks, i);
            bool member = isPunct(toks, p, '.') ||
                          (isPunct(toks, p, '>') &&
                           isPunct(toks, prevSig(toks, p), '-'));
            if (member && isPunct(toks, nextSig(toks, i), '(')) {
                out.push_back(
                    {std::string(file), toks[i].line, "raw-thread",
                     "`detach()` orphans a thread past shutdown; keep "
                     "threads joinable (core::JobServer drains on stop)"});
                continue;
            }
        }
        if (whitelisted)
            continue;
        if (!isIdent(toks, i, "std"))
            continue;
        size_t c1 = nextSig(toks, i);
        if (!isPunct(toks, c1, ':'))
            continue;
        size_t c2 = nextSig(toks, c1);
        if (!isPunct(toks, c2, ':'))
            continue;
        size_t name = nextSig(toks, c2);
        if (name == static_cast<size_t>(-1) ||
            toks[name].kind != Tok::Ident)
            continue;
        const std::string &id = toks[name].text;
        if (id != "thread" && id != "jthread" && id != "async")
            continue;
        out.push_back(
            {std::string(file), toks[name].line, "raw-thread",
             "direct std::" + id + " in library code; route "
             "concurrency through core::JobServer "
             "(src/core/job_server.h)"});
    }
}

/**
 * mutex-annotation: a mutex member in a src/ header is only useful if
 * the lock discipline is stated — some sibling member must carry
 * NXSIM_GUARDED_BY(<that mutex>). Matches owning members of the
 * std::mutex family and of nx::Mutex; references (`Mutex &mu_;`) are
 * borrowed capabilities and exempt. The wrapper in
 * src/util/thread_annotations.h carries the one audited allow().
 */
void
checkMutexAnnotation(const std::vector<Token> &toks, const Scope &sc,
                     std::string_view file, std::vector<Finding> &out)
{
    if (!sc.isSrc || !sc.isHeader)
        return;

    // Names X appearing as NXSIM_GUARDED_BY(X) / NXSIM_PT_GUARDED_BY(X).
    std::set<std::string> guarded;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks, i, "NXSIM_GUARDED_BY") &&
            !isIdent(toks, i, "NXSIM_PT_GUARDED_BY"))
            continue;
        size_t open = nextSig(toks, i);
        if (!isPunct(toks, open, '('))
            continue;
        size_t arg = nextSig(toks, open);
        if (arg != static_cast<size_t>(-1) &&
            toks[arg].kind == Tok::Ident)
            guarded.insert(toks[arg].text);
    }

    auto memberAfterType = [&](size_t typeEnd) -> size_t {
        // <type> <ident> then ';' / '{' / '=' is a member declaration;
        // anything else (reference, pointer, parameter) is not owning.
        size_t name = nextSig(toks, typeEnd);
        if (name == static_cast<size_t>(-1) ||
            toks[name].kind != Tok::Ident)
            return static_cast<size_t>(-1);
        size_t after = nextSig(toks, name);
        if (isPunct(toks, after, ';') || isPunct(toks, after, '{') ||
            isPunct(toks, after, '='))
            return name;
        return static_cast<size_t>(-1);
    };

    auto report = [&](size_t name) {
        const std::string &id = toks[name].text;
        if (guarded.count(id) != 0)
            return;
        out.push_back(
            {std::string(file), toks[name].line, "mutex-annotation",
             "mutex member '" + id + "' guards nothing here; annotate "
             "the data it protects with NXSIM_GUARDED_BY(" + id +
             ") (src/util/thread_annotations.h)"});
    };

    for (size_t i = 0; i < toks.size(); ++i) {
        // std::mutex family: std :: <mutex-ish> <ident> ;
        if (isIdent(toks, i, "std")) {
            size_t c1 = nextSig(toks, i);
            if (!isPunct(toks, c1, ':'))
                continue;
            size_t c2 = nextSig(toks, c1);
            if (!isPunct(toks, c2, ':'))
                continue;
            size_t type = nextSig(toks, c2);
            if (type == static_cast<size_t>(-1) ||
                toks[type].kind != Tok::Ident)
                continue;
            const std::string &id = toks[type].text;
            if (id != "mutex" && id != "recursive_mutex" &&
                id != "shared_mutex" && id != "timed_mutex" &&
                id != "recursive_timed_mutex" &&
                id != "shared_timed_mutex")
                continue;
            size_t name = memberAfterType(type);
            if (name != static_cast<size_t>(-1))
                report(name);
            continue;
        }
        // nx::Mutex (or bare Mutex inside namespace nx). Skip when the
        // previous token is ':' so `nx::Mutex` is not matched twice,
        // and when `Mutex` is being declared rather than used.
        if (isIdent(toks, i, "Mutex")) {
            size_t p = prevSig(toks, i);
            if (isPunct(toks, p, ':'))
                continue;    // qualified use, handled via the `nx` path
            if (p != static_cast<size_t>(-1) &&
                (isIdent(toks, p, "class") ||
                 isIdent(toks, p, "struct") ||
                 isIdent(toks, p, "friend")))
                continue;
            size_t name = memberAfterType(i);
            if (name != static_cast<size_t>(-1))
                report(name);
            continue;
        }
        if (isIdent(toks, i, "nx")) {
            size_t c1 = nextSig(toks, i);
            if (!isPunct(toks, c1, ':'))
                continue;
            size_t c2 = nextSig(toks, c1);
            if (!isPunct(toks, c2, ':'))
                continue;
            size_t type = nextSig(toks, c2);
            if (!isIdent(toks, type, "Mutex"))
                continue;
            size_t name = memberAfterType(type);
            if (name != static_cast<size_t>(-1))
                report(name);
        }
    }
}

void
checkTodoTags(const std::vector<Token> &toks, std::string_view file,
              std::vector<Finding> &out)
{
    for (const Token &t : toks) {
        if (t.kind != Tok::Comment)
            continue;
        const std::string &s = t.text;
        for (std::string_view word : {"TODO", "FIXME"}) {
            size_t pos = 0;
            while ((pos = s.find(word, pos)) != std::string::npos) {
                size_t end = pos + word.size();
                bool boundedLeft =
                    pos == 0 || !identChar(s[pos - 1]);
                bool boundedRight = end >= s.size() || !identChar(s[end]);
                pos = end;
                if (!boundedLeft || !boundedRight)
                    continue;
                // Require an immediate issue tag: TODO(#123).
                bool tagged = false;
                if (end + 2 < s.size() && s[end] == '(' &&
                    s[end + 1] == '#') {
                    size_t d = end + 2;
                    while (d < s.size() &&
                           std::isdigit(static_cast<unsigned char>(s[d])))
                        ++d;
                    tagged = d > end + 2 && d < s.size() && s[d] == ')';
                }
                if (!tagged) {
                    int line = t.line +
                        static_cast<int>(std::count(s.begin(),
                                                    s.begin() +
                                                        static_cast<long>(
                                                            end),
                                                    '\n'));
                    out.push_back({std::string(file), line, "todo-tag",
                                   std::string(word) +
                                       " needs an issue tag: " +
                                       std::string(word) + "(#123)"});
                }
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

std::vector<Finding>
lintFile(std::string_view path, std::string_view content)
{
    Scope sc = scopeFor(path);
    std::vector<Token> toks = Lexer(content).run();

    std::vector<Finding> raw;
    std::vector<Allow> allows =
        nxcommon::collectAllows(toks, "nxlint", kRules, raw, path);

    checkIncludeGuard(toks, sc, path, raw);
    checkUsingNamespace(toks, sc, path, raw);
    checkBannedCalls(toks, sc, path, raw);
    checkBannedIncludes(toks, sc, path, raw);
    checkRawMemcpy(toks, sc, path, raw);
    checkNarrowCast(toks, sc, path, raw);
    checkNodiscard(toks, sc, path, raw);
    checkRawThread(toks, sc, path, raw);
    checkMutexAnnotation(toks, sc, path, raw);
    checkTodoTags(toks, path, raw);

    std::vector<Finding> out;
    nxcommon::applyAllows(std::move(raw), allows, path, out);
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

std::vector<Finding>
lintTree(const std::string &root)
{
    // Lint with tree-relative labels so scoping is stable no matter
    // where the tool is invoked from.
    nxcommon::TreeLoad tl =
        nxcommon::loadTree(root, {"src", "tools", "fuzz", "bench"});
    std::vector<Finding> out = std::move(tl.ioErrors);
    for (const nxcommon::SourceFile &sf : tl.files)
        for (Finding &f : lintFile(sf.path, sf.content))
            out.push_back(std::move(f));
    return out;
}

std::string
format(const Finding &f)
{
    return nxcommon::formatText(f);
}

} // namespace nxlint
