/**
 * @file
 * nxlint — the project-specific static-analysis pass.
 *
 * Stock clang-tidy catches generic C++ smells; nxlint encodes the
 * *domain* contracts this simulator lives by (see DESIGN.md "Static
 * analysis stack"): no silent size narrowing outside the checked-cast
 * helpers, no raw assert/abort outside the contracts header, include
 * guards derived from the file path, status types that must not be
 * dropped on the floor. It is a tokenizer-level checker — deliberately
 * not a compiler plugin — so it runs in milliseconds on every ctest
 * invocation and has zero toolchain dependencies.
 *
 * Findings print as `file:line: rule-id: message`. A finding can be
 * suppressed where it fires with
 *
 *     // nxlint: allow(rule-id): why this instance is fine
 *
 * on the same line, on a comment-only line directly above, or at file
 * scope in a file-level comment before any code. The justification
 * after the colon is mandatory; a bare allow() is itself a finding
 * (rule `bare-allow`).
 */

#ifndef NXSIM_NXLINT_NXLINT_H
#define NXSIM_NXLINT_NXLINT_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"

namespace nxlint {

/** One diagnostic (the shared analyzer-family shape). */
using Finding = nxcommon::Finding;

/** Rule metadata for --list-rules and the docs. */
using RuleInfo = nxcommon::RuleInfo;

/** All rules, in the order they are checked. */
const std::vector<RuleInfo> &rules();

/**
 * Lint one file given as an in-memory buffer. @p path scopes the rules:
 * library-code rules (banned-call, banned-include, raw-memcpy,
 * narrow-cast) fire for paths under src/; header rules for *.h. A path
 * with no recognizable tree prefix (a scratch file) is linted at the
 * strictest scope, as library code.
 */
std::vector<Finding> lintFile(std::string_view path,
                              std::string_view content);

/**
 * Walk @p root's src/, tools/, fuzz/ and bench/ trees (or @p root
 * itself when it is a bare directory of sources) and lint every
 * *.h / *.cc file. Unreadable files produce an "io-error" finding.
 */
std::vector<Finding> lintTree(const std::string &root);

/** Render a finding as `file:line: rule-id: message`. */
std::string format(const Finding &f);

} // namespace nxlint

#endif // NXSIM_NXLINT_NXLINT_H
